//! Per-stream energy budgeting: rolling spend vs. target, with a policy
//! ladder that trades accuracy for energy when a stream runs hot.

use ecofusion_core::{InferenceOptions, Precision};
use ecofusion_gating::GateKind;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A stream's energy target: rolling mean total (platform + clock-gated
/// sensor) energy per frame must stay at or below `target_j`.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::EnergyBudget;
/// let b = EnergyBudget::per_frame(6.0);
/// assert_eq!(b.target_j, 6.0);
/// assert!(EnergyBudget::unlimited().target_j.is_infinite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    /// Target Joules per frame (platform + gated sensors, Eq. 11).
    pub target_j: f64,
    /// Frames in the rolling window the spend is averaged over.
    pub window: usize,
    /// De-escalation threshold as a fraction of `target_j`: the controller
    /// relaxes one level only once the rolling mean falls below
    /// `relax_margin * target_j` (hysteresis; must be `< 1`).
    pub relax_margin: f64,
}

impl EnergyBudget {
    /// A budget of `target_j` Joules/frame with the default window (16
    /// frames) and relax margin (0.8).
    pub fn per_frame(target_j: f64) -> Self {
        EnergyBudget { target_j, window: 16, relax_margin: 0.8 }
    }

    /// No budget: the controller never escalates and the stream keeps its
    /// base inference options.
    pub fn unlimited() -> Self {
        EnergyBudget::per_frame(f64::INFINITY)
    }
}

/// One phase of a [`BudgetTimeline`]: from `start_tick` on, the stream's
/// budget target is `target_j` Joules/frame (until a later phase takes
/// over).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetPhase {
    /// First scheduler tick the phase applies at.
    pub start_tick: u64,
    /// Budget target in force from then on, Joules/frame.
    pub target_j: f64,
}

/// A scripted budget-target schedule for one stream: squeeze ramps,
/// oscillations, or any other piecewise-constant target trajectory.
///
/// The server applies the timeline at the top of every processing step
/// ([`PerceptionServer::set_budget_timeline`](crate::PerceptionServer::set_budget_timeline)),
/// retargeting the stream's [`BudgetController`] whenever the phase in
/// force changes. Before the first phase's `start_tick` the stream keeps
/// its spec budget. Purely tick-driven, so a timelined run is exactly as
/// deterministic (and shard-invariant) as a fixed-budget one.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::{BudgetPhase, BudgetTimeline};
/// let t = BudgetTimeline::new(vec![
///     BudgetPhase { start_tick: 8, target_j: 4.0 },
///     BudgetPhase { start_tick: 24, target_j: 0.5 },
/// ]);
/// assert_eq!(t.target_at(0), None);
/// assert_eq!(t.target_at(10), Some(4.0));
/// assert_eq!(t.target_at(24), Some(0.5));
/// assert!(t.is_structurally_valid());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetTimeline {
    phases: Vec<BudgetPhase>,
}

impl BudgetTimeline {
    /// Creates a timeline; phases are sorted by `start_tick` (stable, so
    /// a later-listed phase wins a tie).
    ///
    /// # Panics
    /// Panics if `phases` is empty or any target is not finite-positive.
    pub fn new(mut phases: Vec<BudgetPhase>) -> Self {
        phases.sort_by_key(|p| p.start_tick);
        let t = BudgetTimeline { phases };
        assert!(
            t.is_structurally_valid(),
            "budget timeline must be non-empty with finite positive targets"
        );
        t
    }

    /// The phases, sorted by start tick.
    pub fn phases(&self) -> &[BudgetPhase] {
        &self.phases
    }

    /// Target in force at `tick`: the last phase whose `start_tick` is at
    /// or before it, `None` before the first phase.
    pub fn target_at(&self, tick: u64) -> Option<f64> {
        self.phases.iter().rev().find(|p| p.start_tick <= tick).map(|p| p.target_j)
    }

    /// Structural invariants: at least one phase, phases sorted by start
    /// tick, every target finite and positive. The mutation hooks below
    /// preserve this by construction.
    pub fn is_structurally_valid(&self) -> bool {
        !self.phases.is_empty()
            && self.phases.windows(2).all(|w| w[0].start_tick <= w[1].start_tick)
            && self.phases.iter().all(|p| p.target_j.is_finite() && p.target_j > 0.0)
    }

    // --- mutation hooks (scenario search) -------------------------------

    /// Sets phase `idx`'s target, clamped to `[0.05, 1e4]` J/frame.
    /// Returns `false` when the index is out of range.
    pub fn set_target(&mut self, idx: usize, target_j: f64) -> bool {
        let Some(p) = self.phases.get_mut(idx) else {
            return false;
        };
        let clamped = if target_j.is_finite() { target_j } else { 1e4 };
        p.target_j = clamped.clamp(0.05, 1e4);
        true
    }

    /// Shifts phase `idx`'s start by `delta` ticks (saturating at 0),
    /// then re-sorts. Returns `false` when the index is out of range.
    pub fn shift_phase(&mut self, idx: usize, delta: i64) -> bool {
        let Some(p) = self.phases.get_mut(idx) else {
            return false;
        };
        p.start_tick = if delta >= 0 {
            p.start_tick.saturating_add(delta as u64)
        } else {
            p.start_tick.saturating_sub(delta.unsigned_abs())
        };
        self.phases.sort_by_key(|p| p.start_tick);
        true
    }

    /// Inserts a phase (kept sorted). Returns `false` when the target is
    /// not finite-positive.
    pub fn insert_phase(&mut self, phase: BudgetPhase) -> bool {
        if !(phase.target_j.is_finite() && phase.target_j > 0.0) {
            return false;
        }
        self.phases.push(phase);
        self.phases.sort_by_key(|p| p.start_tick);
        true
    }

    /// Removes phase `idx`. Refuses (`false`) to empty the timeline or
    /// when the index is out of range (drop the whole timeline instead).
    pub fn remove_phase(&mut self, idx: usize) -> bool {
        if self.phases.len() <= 1 || idx >= self.phases.len() {
            return false;
        }
        self.phases.remove(idx);
        true
    }
}

/// Candidate margin `γ` of the wider mid-ladder rungs: configurations up
/// to this much predicted loss above the best become tradeable for energy.
pub const WIDE_GAMMA: f32 = 2.0;

/// Candidate margin of the top "emergency" rung: wide enough that *every*
/// configuration is a candidate (it exceeds the knowledge gate's reject
/// loss), so `λ_E = 1` selects the globally cheapest branch.
pub const EMERGENCY_GAMMA: f32 = 1.0e9;

/// One rung of the adaptation ladder: the gate, energy weight, and
/// candidate margin a stream runs with at that escalation level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyStep {
    /// Gating strategy at this level.
    pub gate: GateKind,
    /// Energy weight `λ_E` at this level.
    pub lambda_e: f64,
    /// Candidate margin `γ` at this level (wider = more energy headroom
    /// for the joint optimizer, at some accuracy risk).
    pub gamma: f32,
    /// Numeric precision the perception stages run at on this rung.
    /// Defaults to [`Precision::F32`] so ladders serialized before the
    /// precision axis existed deserialize unchanged.
    #[serde(default)]
    pub precision: Precision,
}

impl PolicyStep {
    /// Applies this step to a stream's base options.
    pub fn apply(&self, base: &InferenceOptions) -> InferenceOptions {
        InferenceOptions {
            gate: self.gate,
            lambda_e: self.lambda_e,
            gamma: self.gamma,
            precision: self.precision,
            ..*base
        }
    }
}

/// Default ladder for a stream whose base options are `base`: keep the
/// base gate while raising `λ_E`, then widen the candidate margin so the
/// energy weight has real choices, then drop to an emergency rung —
/// knowledge gate (a static context lookup, the cheapest to evaluate) with
/// every configuration a candidate and `λ_E = 1`, which executes the
/// single cheapest branch — and finally run that same emergency rung with
/// int8-quantized stems and branch heads, so the last escalation runs one
/// stem *quantized* at the measured int8 stage costs.
///
/// Consecutive rungs that the `max` clamps make identical to their
/// predecessor (a base `λ_E` already at 0.7, say) are dropped, so every
/// escalation changes the actual policy instead of burning an observation
/// window on a no-op.
pub fn default_ladder(base: &InferenceOptions) -> Vec<PolicyStep> {
    let candidates = [
        PolicyStep {
            gate: base.gate,
            lambda_e: base.lambda_e,
            gamma: base.gamma,
            precision: base.precision,
        },
        PolicyStep {
            gate: base.gate,
            lambda_e: base.lambda_e.max(0.35),
            gamma: base.gamma,
            precision: base.precision,
        },
        PolicyStep {
            gate: base.gate,
            lambda_e: base.lambda_e.max(0.7),
            gamma: base.gamma.max(WIDE_GAMMA),
            precision: base.precision,
        },
        PolicyStep {
            gate: GateKind::Knowledge,
            lambda_e: 1.0,
            gamma: EMERGENCY_GAMMA,
            precision: base.precision,
        },
        PolicyStep {
            gate: GateKind::Knowledge,
            lambda_e: 1.0,
            gamma: EMERGENCY_GAMMA,
            precision: Precision::Int8,
        },
    ];
    let mut ladder: Vec<PolicyStep> = Vec::with_capacity(candidates.len());
    for step in candidates {
        if ladder.last() != Some(&step) {
            ladder.push(step);
        }
    }
    ladder
}

/// Hysteretic per-stream budget controller.
///
/// Feed it every processed frame's total energy via
/// [`BudgetController::record`]; when the rolling mean exceeds the budget
/// it climbs one rung of the ladder (cheaper policy), and when the mean
/// drops below the relax margin it climbs back down. The window is cleared
/// on every level change so one adaptation must prove itself over a full
/// window before the next.
///
/// A fleet budget coordinator may top the stream's own target up with a
/// *grant* ([`BudgetController::set_grant_j`]): headroom donated by
/// under-budget streams. Both thresholds (escalate and relax) compare
/// against the effective target `target_j + grant_j`, so a granted stream
/// escalates later and relaxes earlier than it would on its own budget.
#[derive(Debug, Clone)]
pub struct BudgetController {
    budget: EnergyBudget,
    ladder: Vec<PolicyStep>,
    level: usize,
    window: VecDeque<f64>,
    sum: f64,
    escalations: u64,
    relaxations: u64,
    grant_j: f64,
}

impl BudgetController {
    /// Creates a controller over `ladder` (level 0 = base policy).
    ///
    /// # Panics
    /// Panics if `ladder` is empty, or if the budget's window is zero or
    /// its relax margin is not in `(0, 1)`.
    pub fn new(budget: EnergyBudget, ladder: Vec<PolicyStep>) -> Self {
        assert!(!ladder.is_empty(), "policy ladder must have at least one step");
        assert!(budget.window > 0, "budget window must be positive");
        assert!(
            budget.relax_margin > 0.0 && budget.relax_margin < 1.0,
            "relax_margin must be in (0, 1)"
        );
        BudgetController {
            budget,
            ladder,
            level: 0,
            window: VecDeque::new(),
            sum: 0.0,
            escalations: 0,
            relaxations: 0,
            grant_j: 0.0,
        }
    }

    /// Records one frame's total energy spend. Returns the new policy step
    /// if the controller changed level, `None` otherwise.
    pub fn record(&mut self, total_j: f64) -> Option<PolicyStep> {
        self.window.push_back(total_j);
        self.sum += total_j;
        if self.window.len() > self.budget.window {
            self.sum -= self.window.pop_front().expect("non-empty window");
        }
        // Adapt only on a full window: a single hot frame is noise.
        if self.window.len() < self.budget.window {
            return None;
        }
        let mean = self.sum / self.window.len() as f64;
        let target = self.effective_target_j();
        if mean > target && self.level + 1 < self.ladder.len() {
            self.level += 1;
            self.escalations += 1;
            self.reset_window();
            Some(self.ladder[self.level])
        } else if mean < target * self.budget.relax_margin && self.level > 0 {
            self.level -= 1;
            self.relaxations += 1;
            self.reset_window();
            Some(self.ladder[self.level])
        } else {
            None
        }
    }

    fn reset_window(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }

    /// Sets the fleet-coordinator grant: extra Joules/frame of headroom
    /// on top of the stream's own target. Recomputed by the coordinator
    /// every step, so a grant is a standing transfer, not a one-off.
    pub fn set_grant_j(&mut self, grant_j: f64) {
        self.grant_j = grant_j.max(0.0);
    }

    /// The grant currently in force (0 without a fleet coordinator).
    pub fn grant_j(&self) -> f64 {
        self.grant_j
    }

    /// The target the controller actually adapts against: the stream's
    /// own budget plus any fleet grant.
    pub fn effective_target_j(&self) -> f64 {
        self.budget.target_j + self.grant_j
    }

    /// Whether the rolling window has filled since the last level change
    /// (the controller only acts — and the fleet coordinator only trusts
    /// the rolling mean — on a full window).
    pub fn window_full(&self) -> bool {
        self.window.len() >= self.budget.window
    }

    /// Rolling mean spend over the current window (0 when empty).
    pub fn rolling_mean_j(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Current escalation level (0 = base policy).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The policy step currently in force.
    pub fn current(&self) -> PolicyStep {
        self.ladder[self.level]
    }

    /// The configured budget.
    pub fn budget(&self) -> EnergyBudget {
        self.budget
    }

    /// Retargets the controller mid-run (a [`BudgetTimeline`] phase
    /// change). Only the target moves; the window, its rolling spend, and
    /// the current ladder level are kept — already-gathered evidence
    /// stays valid, and the very next full-window check adapts against
    /// the new target (the hysteretic relax margin applies as usual).
    pub fn set_target_j(&mut self, target_j: f64) {
        self.budget.target_j = target_j;
    }

    /// Times the controller moved to a cheaper policy.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Times the controller moved back toward the base policy.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }
}

/// Fleet-wide budget coordination policy: how aggressively under-budget
/// streams donate headroom to over-budget ones.
///
/// The coordinator runs once per processing step, at the step barrier,
/// over per-stream rolling means — state that is identical for any shard
/// count — so grants never perturb the shard-determinism invariant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetBudgetPolicy {
    /// Fraction of each donor's headroom (`target − rolling mean`)
    /// contributed to the step's redistribution pool.
    pub donate_frac: f64,
    /// Cap on any stream's grant, as a fraction of its *own* target — a
    /// squeezed stream may borrow headroom, not someone else's budget
    /// wholesale.
    pub max_grant_frac: f64,
}

impl Default for FleetBudgetPolicy {
    /// Donate half the observed headroom; cap grants at half the
    /// receiver's own target.
    fn default() -> Self {
        FleetBudgetPolicy { donate_frac: 0.5, max_grant_frac: 0.5 }
    }
}

/// One stream's budget posture as the fleet coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPosture {
    /// The stream's own target, Joules/frame (infinite = unbudgeted;
    /// such streams neither donate nor receive).
    pub target_j: f64,
    /// Rolling mean spend, Joules/frame.
    pub rolling_mean_j: f64,
    /// Whether the rolling window is full (a partial window right after a
    /// level change is noise, not evidence).
    pub window_full: bool,
}

/// Computes per-stream grants for one step: streams comfortably under
/// budget donate `donate_frac` of their headroom into a pool, which is
/// split across over-budget streams proportionally to their deficit and
/// capped at `max_grant_frac` of each receiver's own target. Returns one
/// grant per posture, in order; all zeros when there is no donor or no
/// receiver.
///
/// Donating requires a full window — headroom must be proven over a whole
/// observation period before it is lent out. Receiving does not: a stream
/// that is running hot on a partial window gets its grant *before* its
/// own controller's first full-window check, which is exactly what lets
/// donated headroom prevent a needless escalation instead of arriving
/// after one.
///
/// The function is pure and order-deterministic: grants depend only on
/// the postures, never on scheduling, threads, or shard layout.
pub fn redistribute_headroom(policy: &FleetBudgetPolicy, postures: &[BudgetPosture]) -> Vec<f64> {
    let mut pool = 0.0;
    let mut total_deficit = 0.0;
    for p in postures {
        if !p.target_j.is_finite() {
            continue;
        }
        if p.window_full && p.rolling_mean_j < p.target_j {
            pool += (p.target_j - p.rolling_mean_j) * policy.donate_frac;
        } else if p.rolling_mean_j > p.target_j {
            total_deficit += p.rolling_mean_j - p.target_j;
        }
    }
    if pool <= 0.0 || total_deficit <= 0.0 {
        return vec![0.0; postures.len()];
    }
    postures
        .iter()
        .map(|p| {
            if !p.target_j.is_finite() || p.rolling_mean_j <= p.target_j {
                return 0.0;
            }
            let share = pool * (p.rolling_mean_j - p.target_j) / total_deficit;
            share.min(policy.max_grant_frac * p.target_j)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_opts() -> InferenceOptions {
        InferenceOptions::new(0.01, 0.5)
    }

    fn controller(target: f64, window: usize) -> BudgetController {
        let budget = EnergyBudget { target_j: target, window, relax_margin: 0.8 };
        BudgetController::new(budget, default_ladder(&base_opts()))
    }

    #[test]
    fn escalates_when_over_budget() {
        let mut c = controller(2.0, 4);
        let mut changed = None;
        for _ in 0..4 {
            changed = c.record(3.0);
        }
        let step = changed.expect("full hot window escalates");
        assert_eq!(c.level(), 1);
        assert!(step.lambda_e > base_opts().lambda_e);
        assert_eq!(c.escalations(), 1);
    }

    #[test]
    fn needs_full_window_before_acting() {
        let mut c = controller(2.0, 8);
        for _ in 0..7 {
            assert!(c.record(100.0).is_none(), "partial window must not escalate");
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn window_cleared_after_escalation() {
        let mut c = controller(2.0, 4);
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 1);
        // Three more hot frames: window not yet refilled, no double jump.
        for _ in 0..3 {
            assert!(c.record(3.0).is_none());
        }
        c.record(3.0);
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn relaxes_with_hysteresis() {
        let mut c = controller(2.0, 4);
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 1);
        // Spend just under target but above the 0.8 margin: hold.
        for _ in 0..8 {
            assert!(c.record(1.9).is_none());
        }
        assert_eq!(c.level(), 1);
        // Well under the margin: relax back to base.
        for _ in 0..4 {
            c.record(1.0);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.relaxations(), 1);
    }

    #[test]
    fn tops_out_at_ladder_end() {
        let mut c = controller(0.5, 2);
        for _ in 0..40 {
            c.record(10.0);
        }
        assert_eq!(c.level(), default_ladder(&base_opts()).len() - 1);
        assert_eq!(c.current().gate, GateKind::Knowledge);
        assert_eq!(c.current().precision, Precision::Int8, "top rung runs quantized");
    }

    #[test]
    fn apply_threads_precision_into_options() {
        let base = base_opts();
        let ladder = default_ladder(&base);
        let emergency = *ladder.last().unwrap();
        let opts = emergency.apply(&base);
        assert_eq!(opts.precision, Precision::Int8);
        // Every non-final rung keeps the base precision.
        for step in &ladder[..ladder.len() - 1] {
            assert_eq!(step.apply(&base).precision, Precision::F32);
        }
    }

    #[test]
    fn policy_step_without_precision_deserializes_to_f32() {
        // A ladder serialized before the precision axis existed must load
        // unchanged (serde default).
        let json = r#"{"gate":"Knowledge","lambda_e":1.0,"gamma":2.0}"#;
        let step: PolicyStep = serde_json::from_str(json).expect("legacy step parses");
        assert_eq!(step.precision, Precision::F32);
    }

    #[test]
    fn ladder_dedupes_noop_rungs() {
        // Base options already at the mid-ladder values: the clamped
        // rungs collapse and only base + the two emergency rungs remain.
        let base = InferenceOptions::new(0.8, 3.0);
        let ladder = default_ladder(&base);
        assert_eq!(ladder.len(), 3, "{ladder:?}");
        for w in ladder.windows(2) {
            assert_ne!(w[0], w[1], "consecutive duplicate rung");
        }
        assert_eq!(ladder.last().unwrap().gate, GateKind::Knowledge);
        assert_eq!(ladder.last().unwrap().precision, Precision::Int8);
        // A low base keeps all five distinct rungs.
        assert_eq!(default_ladder(&base_opts()).len(), 5);
    }

    #[test]
    fn unlimited_budget_never_escalates() {
        let budget = EnergyBudget::unlimited();
        let mut c = BudgetController::new(budget, default_ladder(&base_opts()));
        for _ in 0..100 {
            assert!(c.record(1e9).is_none());
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn rolling_mean_tracks_window() {
        let mut c = controller(100.0, 4);
        c.record(2.0);
        c.record(4.0);
        assert!((c.rolling_mean_j() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ladder")]
    fn empty_ladder_panics() {
        let _ = BudgetController::new(EnergyBudget::per_frame(1.0), Vec::new());
    }

    #[test]
    fn grant_raises_escalation_threshold() {
        // Spend of 3.0 against a target of 2.0 escalates on its own...
        let mut bare = controller(2.0, 4);
        for _ in 0..4 {
            bare.record(3.0);
        }
        assert_eq!(bare.level(), 1);
        // ...but not with a 1.5 J grant (effective target 3.5).
        let mut granted = controller(2.0, 4);
        granted.set_grant_j(1.5);
        assert_eq!(granted.effective_target_j(), 3.5);
        for _ in 0..8 {
            assert!(granted.record(3.0).is_none());
        }
        assert_eq!(granted.level(), 0);
    }

    #[test]
    fn grant_is_clamped_non_negative() {
        let mut c = controller(2.0, 4);
        c.set_grant_j(-5.0);
        assert_eq!(c.grant_j(), 0.0);
    }

    #[test]
    fn window_full_tracks_fill_and_reset() {
        let mut c = controller(2.0, 4);
        assert!(!c.window_full());
        for _ in 0..4 {
            c.record(3.0);
        }
        // The escalation cleared the window.
        assert_eq!(c.level(), 1);
        assert!(!c.window_full());
        for _ in 0..4 {
            c.record(1.0);
        }
        assert!(c.window_full() || c.level() == 0, "relaxation also clears");
    }

    #[test]
    fn redistribution_moves_headroom_to_deficit() {
        let policy = FleetBudgetPolicy::default();
        let postures = [
            // Donor: 4 J of headroom.
            BudgetPosture { target_j: 10.0, rolling_mean_j: 6.0, window_full: true },
            // Receiver: 1 J over.
            BudgetPosture { target_j: 4.0, rolling_mean_j: 5.0, window_full: true },
            // Unbudgeted: never participates.
            BudgetPosture { target_j: f64::INFINITY, rolling_mean_j: 100.0, window_full: true },
        ];
        let grants = redistribute_headroom(&policy, &postures);
        assert_eq!(grants.len(), 3);
        assert_eq!(grants[0], 0.0);
        // Pool = 4.0 * 0.5 = 2.0, single receiver takes it all, which is
        // exactly the 0.5 * 4.0 cap.
        assert!((grants[1] - 2.0).abs() < 1e-12, "{grants:?}");
        assert_eq!(grants[2], 0.0);
    }

    #[test]
    fn redistribution_splits_pool_by_deficit_and_caps() {
        let policy = FleetBudgetPolicy { donate_frac: 1.0, max_grant_frac: 0.25 };
        let postures = [
            BudgetPosture { target_j: 12.0, rolling_mean_j: 3.0, window_full: true },
            // Deficits 3.0 and 1.0: 3:1 split of the 9 J pool, then the
            // 0.25 * target cap bites the first receiver only.
            BudgetPosture { target_j: 4.0, rolling_mean_j: 7.0, window_full: true },
            BudgetPosture { target_j: 16.0, rolling_mean_j: 17.0, window_full: true },
        ];
        let grants = redistribute_headroom(&policy, &postures);
        assert!((grants[1] - 1.0).abs() < 1e-12, "capped at 0.25*4: {grants:?}");
        assert!((grants[2] - 2.25).abs() < 1e-12, "uncapped 1/4 share: {grants:?}");
    }

    #[test]
    fn timeline_phases_take_over_in_tick_order() {
        let t = BudgetTimeline::new(vec![
            BudgetPhase { start_tick: 20, target_j: 1.0 },
            BudgetPhase { start_tick: 5, target_j: 6.0 },
        ]);
        // Construction sorts.
        assert_eq!(t.phases()[0].start_tick, 5);
        assert_eq!(t.target_at(4), None);
        assert_eq!(t.target_at(5), Some(6.0));
        assert_eq!(t.target_at(19), Some(6.0));
        assert_eq!(t.target_at(1000), Some(1.0));
    }

    #[test]
    fn timeline_mutation_hooks_preserve_validity() {
        let mut t = BudgetTimeline::new(vec![
            BudgetPhase { start_tick: 0, target_j: 8.0 },
            BudgetPhase { start_tick: 16, target_j: 2.0 },
        ]);
        assert!(t.set_target(1, -3.0), "target clamps instead of failing");
        assert_eq!(t.phases()[1].target_j, 0.05);
        assert!(t.set_target(0, f64::INFINITY));
        assert_eq!(t.phases()[0].target_j, 1e4);
        assert!(t.shift_phase(1, -100));
        assert_eq!(t.phases()[0].start_tick, 0, "re-sorted after the shift");
        assert!(t.insert_phase(BudgetPhase { start_tick: 8, target_j: 4.0 }));
        assert!(!t.insert_phase(BudgetPhase { start_tick: 8, target_j: f64::NAN }));
        assert!(t.remove_phase(0));
        assert!(t.remove_phase(0));
        assert!(!t.remove_phase(0), "the last phase is irremovable");
        assert!(!t.set_target(9, 1.0));
        assert!(t.is_structurally_valid());
    }

    #[test]
    fn retarget_keeps_window_and_level() {
        let mut c = controller(2.0, 4);
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 1);
        // Raise the target far above the spend: the next full window
        // relaxes back against the *new* target.
        c.set_target_j(100.0);
        assert_eq!(c.budget().target_j, 100.0);
        assert_eq!(c.level(), 1, "retarget alone moves no rung");
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    #[should_panic(expected = "timeline")]
    fn empty_timeline_panics() {
        let _ = BudgetTimeline::new(Vec::new());
    }

    #[test]
    fn redistribution_needs_proven_donors_and_both_sides() {
        let policy = FleetBudgetPolicy::default();
        // Donor's window not full: no pool, so no grants at all.
        let postures = [
            BudgetPosture { target_j: 10.0, rolling_mean_j: 2.0, window_full: false },
            BudgetPosture { target_j: 4.0, rolling_mean_j: 9.0, window_full: true },
        ];
        assert_eq!(redistribute_headroom(&policy, &postures), vec![0.0, 0.0]);
        // No receiver: pool exists but nobody draws on it.
        let donors_only =
            [BudgetPosture { target_j: 10.0, rolling_mean_j: 2.0, window_full: true }];
        assert_eq!(redistribute_headroom(&policy, &donors_only), vec![0.0]);
        // A receiver on a *partial* window still draws: the grant must
        // land before the receiver's own first full-window check.
        let early_receiver = [
            BudgetPosture { target_j: 10.0, rolling_mean_j: 2.0, window_full: true },
            BudgetPosture { target_j: 4.0, rolling_mean_j: 5.0, window_full: false },
        ];
        let grants = redistribute_headroom(&policy, &early_receiver);
        assert_eq!(grants[0], 0.0);
        assert!(grants[1] > 0.0, "partial-window receiver must draw: {grants:?}");
    }
}
