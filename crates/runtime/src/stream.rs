//! Deterministic per-vehicle frame sources with context drift.

use crate::budget::EnergyBudget;
use crate::queue::BackpressurePolicy;
use ecofusion_core::{Frame, InferenceOptions};
use ecofusion_faults::{FaultInjector, FaultSchedule};
use ecofusion_scene::{Context, ContextWalk, ScenarioGenerator, Scene, SceneSequence};
use ecofusion_sensors::SensorSuite;
use ecofusion_tensor::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Frame interval of a vehicle stream, seconds (10 Hz — RADIATE's radar
/// rate, and the cadence the PX2 latencies are quoted against).
pub const STREAM_DT: f64 = 0.1;

/// Static description of one vehicle stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Seed of the stream's scenario generator, drift walk, and sensor
    /// noise (streams with different seeds are fully independent).
    pub seed: u64,
    /// Observation grid side length (must match the serving model).
    pub grid: usize,
    /// Context of the first segment.
    pub initial_context: Context,
    /// Frames per context segment: the stream simulates one
    /// [`SceneSequence`] of this length, then drifts to the next context.
    pub dwell_frames: usize,
    /// Probability the drift walk stays in the current context at a
    /// segment boundary (otherwise it redraws from the RADIATE mix).
    pub drift_stay_prob: f64,
    /// Scheduler ticks between frames (1 = a frame every tick).
    pub frame_period: u64,
    /// Tick offset of the first frame, so streams can be staggered.
    pub phase: u64,
    /// Capacity of the stream's ingest queue.
    pub queue_capacity: usize,
    /// What happens when the ingest queue is full.
    pub backpressure: BackpressurePolicy,
    /// The stream's energy budget.
    pub budget: EnergyBudget,
    /// Inference options at escalation level 0.
    pub base_opts: InferenceOptions,
    /// Whether the server's per-stream health monitor feeds the gating
    /// layer: when true, sensors the monitor marks failed are masked in
    /// the stream's [`InferenceOptions::health`] before every selection.
    /// Off by default — clean streams behave bit-identically to a server
    /// without health monitoring.
    #[serde(default)]
    pub health_gating: bool,
    /// Frames the producer emits per due tick. The default of 0 is
    /// treated as 1 — the classic one-frame-per-tick producer; values
    /// above 1 model a source faster than the scheduler's service rate —
    /// with a [`BackpressurePolicy::Stall`] queue the producer stalls
    /// mid-burst the moment the queue fills, which is exactly the
    /// saturation the `queue_saturation` suite exercises.
    #[serde(default)]
    pub frames_per_tick: usize,
}

impl StreamSpec {
    /// A spec with sensible defaults: city start, 8-frame segments, a
    /// frame every tick, an 8-deep drop-oldest queue, no energy budget,
    /// and the paper-default inference options (`λ_E = 0.01`, attention
    /// gate).
    ///
    /// # Example
    ///
    /// ```
    /// use ecofusion_runtime::{EnergyBudget, StreamSpec};
    /// let spec = StreamSpec::new(7, 32).with_budget(EnergyBudget::per_frame(6.0));
    /// assert_eq!(spec.grid, 32);
    /// assert_eq!(spec.budget.target_j, 6.0);
    /// ```
    pub fn new(seed: u64, grid: usize) -> Self {
        StreamSpec {
            seed,
            grid,
            initial_context: Context::City,
            dwell_frames: 8,
            drift_stay_prob: 0.25,
            frame_period: 1,
            phase: 0,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::DropOldest,
            budget: EnergyBudget::unlimited(),
            base_opts: InferenceOptions::new(0.01, 0.5),
            health_gating: false,
            frames_per_tick: 1,
        }
    }

    /// Same spec starting in `context`.
    pub fn with_context(mut self, context: Context) -> Self {
        self.initial_context = context;
        self
    }

    /// Same spec with an energy budget.
    pub fn with_budget(mut self, budget: EnergyBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Same spec with a queue capacity and backpressure policy.
    pub fn with_queue(mut self, capacity: usize, policy: BackpressurePolicy) -> Self {
        self.queue_capacity = capacity;
        self.backpressure = policy;
        self
    }

    /// Same spec emitting every `period` ticks starting at `phase`.
    pub fn with_timing(mut self, period: u64, phase: u64) -> Self {
        self.frame_period = period;
        self.phase = phase;
        self
    }

    /// Same spec with different base inference options.
    pub fn with_opts(mut self, opts: InferenceOptions) -> Self {
        self.base_opts = opts;
        self
    }

    /// Same spec with fault-aware gating switched on or off.
    pub fn with_health_gating(mut self, enabled: bool) -> Self {
        self.health_gating = enabled;
        self
    }

    /// Same spec emitting `frames` frames per due tick (an over-producing
    /// source; see [`StreamSpec::frames_per_tick`]).
    pub fn with_frames_per_tick(mut self, frames: usize) -> Self {
        self.frames_per_tick = frames;
        self
    }

    /// Frames the producer emits per due tick, with the serde-default 0
    /// normalized to 1.
    pub fn burst(&self) -> usize {
        self.frames_per_tick.max(1)
    }
}

/// A deterministic stream of rendered frames from one simulated vehicle.
///
/// Scenes come from a seeded [`ScenarioGenerator`], evolve in
/// [`SceneSequence`] segments (constant-velocity kinematics at
/// [`STREAM_DT`]), and drift context at segment boundaries via a seeded
/// walk over the RADIATE mix. Rendering draws from a per-frame RNG stream
/// derived from the stream seed and frame index only, so two streams built
/// from the same spec produce bit-identical frames regardless of when or
/// how often they are polled.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::{StreamSpec, VehicleStream};
/// let mut a = VehicleStream::new(StreamSpec::new(3, 32));
/// let mut b = VehicleStream::new(StreamSpec::new(3, 32));
/// let fa = a.next_frame();
/// let fb = b.next_frame();
/// assert_eq!(fa.scene, fb.scene);
/// ```
#[derive(Debug)]
pub struct VehicleStream {
    spec: StreamSpec,
    generator: ScenarioGenerator,
    drift_rng: Rng,
    suite: SensorSuite,
    context: Context,
    pending: VecDeque<Scene>,
    produced: u64,
    /// Optional fault injector; `None` renders the clean path untouched.
    injector: Option<FaultInjector>,
    /// Optional scripted context walk. When set, segment contexts and
    /// dwells come from the script instead of the drift RNG (which is
    /// then never drawn), and the final segment repeats forever.
    script: Option<ContextWalk>,
    /// Index of the next scripted segment to play.
    script_cursor: usize,
}

impl VehicleStream {
    /// Creates the stream described by `spec`.
    ///
    /// # Panics
    /// Panics if `dwell_frames` is zero or `frame_period` is zero.
    pub fn new(spec: StreamSpec) -> Self {
        assert!(spec.dwell_frames > 0, "dwell_frames must be positive");
        assert!(spec.frame_period > 0, "frame_period must be positive");
        VehicleStream {
            generator: ScenarioGenerator::new(spec.seed),
            drift_rng: Rng::new(spec.seed ^ 0xD21F_7000),
            suite: SensorSuite::new(spec.grid),
            context: spec.initial_context,
            pending: VecDeque::new(),
            produced: 0,
            injector: None,
            script: None,
            script_cursor: 0,
            spec,
        }
    }

    /// Attaches a scripted context walk: segment contexts and dwells
    /// follow `walk` exactly (the final segment repeats once the script
    /// runs out), the spec's `initial_context`, `dwell_frames`, and
    /// `drift_stay_prob` are ignored, and the drift RNG is never drawn.
    /// Scenes and rendering stay keyed on the stream seed and frame index
    /// as usual, so a scripted stream is bit-reproducible from
    /// `(spec, walk)` alone — the property that makes a distilled
    /// scenario a deterministic regression test.
    ///
    /// # Panics
    /// Panics if `walk` is structurally invalid (empty, or a zero dwell).
    pub fn with_walk(mut self, walk: ContextWalk) -> Self {
        assert!(walk.is_structurally_valid(), "context walk must be non-empty with dwell >= 1");
        self.context = walk.segments()[0].context;
        self.script = Some(walk);
        self.script_cursor = 0;
        self
    }

    /// The attached context walk, if any.
    pub fn walk(&self) -> Option<&ContextWalk> {
        self.script.as_ref()
    }

    /// Attaches a fault schedule: from the next frame on, the stream's
    /// observations pass through a [`FaultInjector`] keyed on the frame
    /// index. The injector is seeded from the stream seed, so a degraded
    /// stream is exactly as reproducible as a clean one — and an empty
    /// schedule leaves every frame bit-identical to the clean stream.
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.injector = Some(FaultInjector::new(schedule, self.spec.seed ^ 0xFA17_5EED));
        self
    }

    /// The attached fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.injector.as_ref().map(|i| i.schedule())
    }

    /// `(faulty frames, fault-event applications)` injected so far.
    pub fn fault_counts(&self) -> (u64, u64) {
        self.injector.as_ref().map(|i| (i.frames_faulted(), i.events_applied())).unwrap_or((0, 0))
    }

    /// The stream's spec.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Context of the segment currently being emitted.
    pub fn context(&self) -> Context {
        self.context
    }

    /// Frames produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Whether the stream emits a frame at scheduler tick `tick`.
    pub fn emits_at(&self, tick: u64) -> bool {
        tick >= self.spec.phase && (tick - self.spec.phase).is_multiple_of(self.spec.frame_period)
    }

    /// Renders and returns the next frame of the stream.
    pub fn next_frame(&mut self) -> Frame {
        if self.pending.is_empty() {
            self.refill_segment();
        }
        let scene = self.pending.pop_front().expect("segment refilled");
        // Per-frame render stream keyed on (stream seed, frame index):
        // reproducible regardless of segment boundaries or polling order.
        let mut rng = Rng::new(
            self.spec.seed ^ self.produced.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xC5),
        );
        let obs = self.suite.observe(&scene, &mut rng);
        let obs = match &mut self.injector {
            Some(injector) => injector.apply(obs, scene.context),
            None => obs,
        };
        self.produced += 1;
        Frame { scene, obs }
    }

    /// Renders the next `n` frames (convenience for offline replay and
    /// benchmarking).
    pub fn generate(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    fn refill_segment(&mut self) {
        let dwell = match &self.script {
            Some(walk) => {
                let seg = walk.segment(self.script_cursor);
                self.script_cursor = self.script_cursor.saturating_add(1);
                self.context = seg.context;
                seg.dwell as usize
            }
            None => {
                if self.produced > 0 {
                    self.context = self.drift();
                }
                self.spec.dwell_frames
            }
        };
        let base = self.generator.scene(self.context);
        let seq = SceneSequence::simulate(base, dwell - 1, STREAM_DT);
        self.pending.extend(seq.frames().iter().cloned());
    }

    /// Seeded context walk: stay with `drift_stay_prob`, else redraw from
    /// the RADIATE mix distribution.
    fn drift(&mut self) -> Context {
        if self.drift_rng.chance(self.spec.drift_stay_prob) {
            return self.context;
        }
        let w = Context::mix_weights();
        let r = self.drift_rng.uniform(0.0, 1.0);
        let mut acc = 0.0;
        for (i, c) in Context::ALL.iter().enumerate() {
            acc += w[i];
            if r <= acc {
                return *c;
            }
        }
        self.context
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_spec() {
        let spec = StreamSpec::new(9, 32);
        let mut a = VehicleStream::new(spec);
        let mut b = VehicleStream::new(spec);
        for _ in 0..12 {
            let fa = a.next_frame();
            let fb = b.next_frame();
            assert_eq!(fa.scene, fb.scene);
            for k in ecofusion_sensors::SensorKind::ALL {
                assert_eq!(fa.obs.grid(k), fb.obs.grid(k));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = VehicleStream::new(StreamSpec::new(1, 32));
        let mut b = VehicleStream::new(StreamSpec::new(2, 32));
        assert_ne!(a.next_frame().scene, b.next_frame().scene);
    }

    #[test]
    fn context_drifts_across_segments() {
        let mut spec = StreamSpec::new(4, 32);
        spec.dwell_frames = 2;
        spec.drift_stay_prob = 0.0;
        let mut s = VehicleStream::new(spec);
        let mut contexts = std::collections::BTreeSet::new();
        for _ in 0..40 {
            contexts.insert(s.next_frame().scene.context);
        }
        assert!(contexts.len() > 2, "drift never left {contexts:?}");
    }

    #[test]
    fn segments_are_temporally_coherent() {
        let mut spec = StreamSpec::new(5, 32);
        spec.dwell_frames = 4;
        let mut s = VehicleStream::new(spec);
        let frames = s.generate(4);
        // Within a segment the context is constant and scene ids follow
        // the sequence numbering scheme.
        assert!(frames.iter().all(|f| f.scene.context == frames[0].scene.context));
        assert_eq!(frames[1].scene.id, frames[0].scene.id * 10_000 + 1);
    }

    #[test]
    fn emission_schedule_respects_period_and_phase() {
        let mut spec = StreamSpec::new(6, 32);
        spec.frame_period = 3;
        spec.phase = 1;
        let s = VehicleStream::new(spec);
        let emitted: Vec<u64> = (0..9).filter(|t| s.emits_at(*t)).collect();
        assert_eq!(emitted, vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "dwell_frames")]
    fn zero_dwell_panics() {
        let mut spec = StreamSpec::new(7, 32);
        spec.dwell_frames = 0;
        let _ = VehicleStream::new(spec);
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical() {
        let spec = StreamSpec::new(21, 32);
        let mut clean = VehicleStream::new(spec);
        let mut faulted = VehicleStream::new(spec).with_faults(FaultSchedule::empty());
        for _ in 0..6 {
            let a = clean.next_frame();
            let b = faulted.next_frame();
            assert_eq!(a.scene, b.scene);
            for k in ecofusion_sensors::SensorKind::ALL {
                assert_eq!(a.obs.grid(k), b.obs.grid(k));
            }
        }
        assert_eq!(faulted.fault_counts(), (0, 0));
    }

    #[test]
    fn scripted_walk_replaces_drift_and_holds_the_tail() {
        use ecofusion_scene::ContextWalk;
        let walk =
            ContextWalk::from_pairs(&[(Context::Fog, 3), (Context::Night, 2), (Context::Snow, 1)]);
        // Spec drift fields are deliberately hostile: a scripted stream
        // must ignore them entirely.
        let mut spec = StreamSpec::new(31, 32).with_context(Context::City);
        spec.dwell_frames = 1;
        spec.drift_stay_prob = 0.0;
        let mut s = VehicleStream::new(spec).with_walk(walk.clone());
        assert_eq!(s.context(), Context::Fog, "walk overrides initial_context");
        for f in 0..10u64 {
            let frame = s.next_frame();
            assert_eq!(frame.scene.context, walk.context_at(f), "frame {f}");
        }
        assert!(s.walk().is_some());
        // Bit-reproducible from (spec, walk).
        let mut a = VehicleStream::new(spec).with_walk(walk.clone());
        let mut b = VehicleStream::new(spec).with_walk(walk);
        for _ in 0..8 {
            let fa = a.next_frame();
            let fb = b.next_frame();
            assert_eq!(fa.scene, fb.scene);
            for k in ecofusion_sensors::SensorKind::ALL {
                assert_eq!(fa.obs.grid(k), fb.obs.grid(k));
            }
        }
    }

    #[test]
    fn frames_per_tick_defaults_to_one() {
        let spec = StreamSpec::new(1, 32);
        assert_eq!(spec.frames_per_tick, 1);
        assert_eq!(spec.burst(), 1);
        // The serde default (a field-less legacy spec) normalizes to 1.
        let mut legacy = spec;
        legacy.frames_per_tick = 0;
        assert_eq!(legacy.burst(), 1);
        assert_eq!(spec.with_frames_per_tick(3).burst(), 3);
    }

    #[test]
    fn fault_schedule_applies_deterministically() {
        use ecofusion_sensors::SensorKind;
        let spec = StreamSpec::new(22, 32);
        let schedule = FaultSchedule::empty().with_dropout(SensorKind::Lidar, 2, 3);
        let run = || {
            let mut s = VehicleStream::new(spec).with_faults(schedule.clone());
            s.generate(6)
        };
        let a = run();
        let b = run();
        for (fa, fb) in a.iter().zip(&b) {
            for k in SensorKind::ALL {
                assert_eq!(fa.obs.grid(k), fb.obs.grid(k));
            }
        }
        let mut clean = VehicleStream::new(spec);
        let c = clean.generate(6);
        // Inside the interval the lidar grid is blanked; outside it the
        // stream is untouched.
        assert_eq!(a[1].obs.grid(SensorKind::Lidar), c[1].obs.grid(SensorKind::Lidar));
        assert_eq!(a[3].obs.grid(SensorKind::Lidar).sum(), 0.0);
        assert_eq!(a[5].obs.grid(SensorKind::Lidar), c[5].obs.grid(SensorKind::Lidar));
        assert_eq!(a[3].obs.grid(SensorKind::Radar), c[3].obs.grid(SensorKind::Radar));
        let mut s = VehicleStream::new(spec).with_faults(schedule);
        let _ = s.generate(6);
        assert_eq!(s.fault_counts(), (3, 3));
        assert!(s.fault_schedule().is_some());
    }
}
