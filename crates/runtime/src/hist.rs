//! Fixed-bucket latency histogram.
//!
//! [`StreamTelemetry`](crate::StreamTelemetry) used to keep a running
//! latency *mean* only, which hides exactly the behavior a serving system
//! cares about: tail frames where the gate picked an expensive ensemble or
//! the budget ladder had not yet escalated. This histogram records every
//! per-frame modeled latency into fixed-width buckets so percentiles
//! (p50/p95/p99) are available at report time in O(buckets), with bounded
//! memory regardless of run length.
//!
//! Buckets are fixed (width [`BUCKET_WIDTH_MS`], [`NUM_BUCKETS`] of them,
//! plus an overflow bucket) rather than adaptive, so two runs of the same
//! workload produce bit-identical percentile estimates — a property the
//! bench-report regression gate relies on. A percentile is reported as the
//! *upper edge* of the bucket containing it: a deterministic, conservative
//! (never under-reporting) estimate with error bounded by one bucket
//! width.

use serde::{Deserialize, Serialize};

/// Width of one histogram bucket, milliseconds.
pub const BUCKET_WIDTH_MS: f64 = 0.25;

/// Number of regular buckets. Together with [`BUCKET_WIDTH_MS`] this
/// covers [0, 256) ms — the PX2 cost model tops out around 70 ms/frame
/// for the full four-branch ensemble, so real pipelines land well inside.
pub const NUM_BUCKETS: usize = 1024;

/// A fixed-bucket histogram of per-frame latencies.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(ms as f64);
/// }
/// assert_eq!(h.count(), 100);
/// // Upper bucket edge of the sample at the 50th percentile.
/// assert!((h.percentile(50.0) - 50.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket occupancy; index `NUM_BUCKETS` is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum_ms: f64,
    max_ms: f64,
    /// Smallest recorded (clamped) sample; 0 when empty. `serde(default)`
    /// so histograms serialized before the field existed still load.
    #[serde(default)]
    min_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS + 1],
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
            min_ms: 0.0,
        }
    }

    /// Records one latency sample. Negative or NaN samples clamp to the
    /// first bucket; samples at or beyond the covered range — including
    /// `+∞` from a broken cost model — land in the overflow bucket and
    /// drive the tracked max (so tail percentiles report them honestly
    /// instead of under-reporting). Only finite samples contribute to
    /// the mean.
    pub fn record(&mut self, ms: f64) {
        // Float→usize casts saturate, so +∞ maps to the overflow bucket.
        let idx = if ms > 0.0 { ((ms / BUCKET_WIDTH_MS) as usize).min(NUM_BUCKETS) } else { 0 };
        self.counts[idx] += 1;
        // Track the min of the clamped sample (negative/NaN → 0, matching
        // the bucket it landed in) so `percentile(0)` is exact, the way
        // `max()` already is for the tail.
        let clamped = if ms > 0.0 { ms } else { 0.0 };
        if self.count == 0 || clamped < self.min_ms {
            self.min_ms = clamped;
        }
        self.count += 1;
        if ms.is_finite() {
            self.sum_ms += ms;
        }
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (exact, not bucketed). Zero when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Largest recorded sample (exact). Zero when empty.
    pub fn max(&self) -> f64 {
        self.max_ms
    }

    /// Smallest recorded sample after clamping (negative/NaN samples
    /// clamp to 0, as in [`LatencyHistogram::record`]). Zero when empty.
    pub fn min(&self) -> f64 {
        self.min_ms
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), reported as the upper
    /// edge of the bucket holding the rank-`⌈p/100·n⌉` sample. Two exact
    /// corners: `p ≤ 0` reports the observed minimum (not a bucket edge —
    /// under an all-overflow distribution the bucket walk would otherwise
    /// report the *maximum* for every `p`, an unbounded over-report of
    /// p0), and the overflow bucket reports the exact observed maximum.
    /// Zero when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if p <= 0.0 {
            return self.min_ms;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if idx == NUM_BUCKETS {
                    return self.max_ms;
                }
                return (idx + 1) as f64 * BUCKET_WIDTH_MS;
            }
        }
        self.max_ms
    }

    /// Folds another histogram into this one (for rolling per-stream
    /// histograms into a suite- or fleet-level distribution).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count > 0 && (self.count == 0 || other.min_ms < self.min_ms) {
            self.min_ms = other.min_ms;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        if other.max_ms > self.max_ms {
            self.max_ms = other.max_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        // 1..=100 ms, one sample each: the p-th percentile is the sample
        // `p` itself; the histogram reports its bucket's upper edge.
        let mut h = LatencyHistogram::new();
        for ms in 1..=100 {
            h.record(ms as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert!((h.percentile(50.0) - 50.25).abs() < 1e-12);
        assert!((h.percentile(95.0) - 95.25).abs() < 1e-12);
        assert!((h.percentile(99.0) - 99.25).abs() < 1e-12);
        assert!((h.percentile(100.0) - 100.25).abs() < 1e-12);
        // Bucketing error is bounded by one bucket width.
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            let exact = p; // value == percentile for this distribution
            assert!((h.percentile(p) - exact).abs() <= BUCKET_WIDTH_MS + 1e-12);
        }
    }

    #[test]
    fn single_sample_dominates_all_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(7.1);
        for p in [1.0, 50.0, 99.0, 100.0] {
            // 7.1 / 0.25 = 28.4 → bucket 28, upper edge 7.25.
            assert!((h.percentile(p) - 7.25).abs() < 1e-12);
        }
        assert!((h.max() - 7.1).abs() < 1e-12);
        // p0 is the exact observed minimum, like max() is for the tail.
        assert!((h.percentile(0.0) - 7.1).abs() < 1e-12);
        assert!((h.min() - 7.1).abs() < 1e-12);
    }

    #[test]
    fn p0_reports_exact_minimum() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.0), 0.0, "empty");
        h.record(42.9);
        h.record(3.7);
        h.record(100.0);
        assert!((h.percentile(0.0) - 3.7).abs() < 1e-12);
        // Negative/NaN samples clamp to the floor bucket and drag the
        // minimum to 0, consistently with where they were counted.
        h.record(-5.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn all_overflow_keeps_p0_at_min_not_max() {
        // Every sample beyond the covered range: the bucket walk can only
        // say "overflow", but p0 must still report the true minimum, not
        // the maximum.
        let mut h = LatencyHistogram::new();
        h.record(5_000.0);
        h.record(10_000.0);
        h.record(20_000.0);
        assert!((h.percentile(0.0) - 5_000.0).abs() < 1e-12);
        assert!((h.percentile(50.0) - 20_000.0).abs() < 1e-12, "overflow reports exact max");
        assert!((h.max() - 20_000.0).abs() < 1e-12);
    }

    #[test]
    fn merge_percentiles_match_combined_in_corners() {
        // Satellite contract: merge(a, b) percentiles equal a histogram
        // fed the combined samples, in the corner cases — p = 0, a
        // single-sample side, and an all-overflow side.
        let cases: [(&[f64], &[f64]); 4] = [
            // Single sample vs. single sample.
            (&[7.1], &[2.3]),
            // Single sample vs. empty.
            (&[7.1], &[]),
            // All-overflow on one side, regular on the other.
            (&[5_000.0, 20_000.0], &[1.0, 2.0, 3.0]),
            // All-overflow on both sides.
            (&[9_000.0], &[400.0, 123_456.0]),
        ];
        for (xs, ys) in cases {
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            let mut combined = LatencyHistogram::new();
            for &x in xs {
                a.record(x);
                combined.record(x);
            }
            for &y in ys {
                b.record(y);
                combined.record(y);
            }
            a.merge(&b);
            assert_eq!(a, combined, "merged state != combined state for {xs:?} + {ys:?}");
            for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
                let m = a.percentile(p);
                let c = combined.percentile(p);
                assert!(
                    (m - c).abs() < 1e-12,
                    "p{p} diverges after merge: {m} vs {c} for {xs:?} + {ys:?}"
                );
            }
        }
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        h.record(10_000.0);
        assert!((h.percentile(99.0) - 10_000.0).abs() < 1e-12);
        assert!((h.max() - 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_sample_surfaces_in_tail_not_floor() {
        // A broken cost model emitting +inf must blow up the tail (so a
        // regression gate fails), not hide in the first bucket.
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        h.record(f64::INFINITY);
        assert!(h.percentile(99.0).is_infinite());
        assert!(h.max().is_infinite());
        // The mean stays finite: only finite samples contribute.
        assert!(h.mean().is_finite());
        // NaN still clamps to the floor without poisoning anything.
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for ms in 1..=50 {
            a.record(ms as f64);
            c.record(ms as f64);
        }
        for ms in 51..=100 {
            b.record(ms as f64);
            c.record(ms as f64);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut h = LatencyHistogram::new();
            for i in 0..1000u64 {
                h.record((i % 97) as f64 * 0.33 + 0.5);
            }
            (h.percentile(50.0), h.percentile(95.0), h.percentile(99.0))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn serde_roundtrip() {
        let mut h = LatencyHistogram::new();
        for ms in [0.1, 5.0, 70.0, 400.0] {
            h.record(ms);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
