//! Multi-stream perception runtime.
//!
//! The paper evaluates EcoFusion one vehicle at a time; the production
//! target is a server that ingests **many concurrent vehicle streams** and
//! keeps each within its energy budget while amortizing compute across
//! them — and across cores. This crate provides that layer on top of
//! [`EcoFusionModel::infer_batch`](ecofusion_core::EcoFusionModel::infer_batch):
//!
//! ```text
//!  VehicleStream 0 ──┐ (seeded SceneSequence + context drift)
//!  VehicleStream 1 ──┤
//!       ...          ├─▶ per-stream FrameQueue (bounded, backpressure)
//!  VehicleStream N ──┘            │
//!                                 ▼  global round-robin pick (serial:
//!                                    the pop schedule, and so every
//!                                    drop/stall, is shard-invariant)
//!                     work units keyed on (home shard, InferenceOptions)
//!                                 │
//!              ┌──────────────────┼──────────────────┐ std::thread::scope
//!              ▼                  ▼                  ▼
//!          shard 0            shard 1    ...     shard S-1
//!       (model replica)    (model replica)    (model replica)
//!       infer_batch_cached on each unit; a drained shard steals
//!       whole units from the deepest neighbor (never splitting a
//!       stream's FIFO run)
//!              └──────────────────┼──────────────────┘
//!                                 ▼  serial accounting, unit order
//!      StreamTelemetry     BudgetController      RuntimeReport
//!      (energy/latency/    (rolling energy vs    (per-stream reports,
//!       accuracy)           budget → ladder;      fleet latency
//!                           fleet coordinator     percentiles, shard
//!                           regrants headroom)    stats)
//! ```
//!
//! # Sharded execution and the determinism invariant
//!
//! [`RuntimeConfig::shards`] partitions streams round-robin across worker
//! threads, each owning a snapshot-restored replica of the serving model
//! (restore is inference-bit-identical, and inference never mutates
//! observable model state). Every processing step picks frames with the
//! *single global* round-robin coalescer first — so queue pops,
//! backpressure drops, and stalls cannot depend on the shard layout —
//! then executes per-shard option-keyed groups in parallel and accounts
//! results serially in group order. Batched inference is bit-identical to
//! sequential, so the invariant holds by construction and is asserted by
//! this crate's tests and the CI shard matrix: **per-stream outputs,
//! selection digests, and reports are bit-identical for any shard count,
//! with work stealing on or off.** Cross-stream batching (PR 2) was
//! amortization-bound on one core; shards resolve that caveat — on an
//! S-core host, S shards execute their micro-batches concurrently.
//!
//! **Work stealing** ([`RuntimeConfig::work_stealing`]): a worker whose
//! shard has no unclaimed units left claims whole units from the shard
//! with the deepest backlog, newest unit first, via one atomic
//! compare-exchange per claim. A stream's frames for a step always
//! travel in one unit (with its stem cache moved alongside), so stealing
//! never reorders a stream or perturbs cache hit/miss counters.
//!
//! **Fleet budget coordinator** ([`RuntimeConfig::fleet_budget`]): once
//! per step, streams whose rolling spend sits comfortably under their
//! [`EnergyBudget`] donate a fraction of that headroom into a pool that
//! over-budget streams draw from (pro rata to their deficit, capped at a
//! fraction of their own target) via [`BudgetController::set_grant_j`].
//! Grants are computed at the step barrier from per-stream rolling means
//! — shard-invariant state — so coordination composes with sharding
//! without touching the determinism invariant.
//!
//! * [`VehicleStream`] — a deterministic frame source: a seeded
//!   [`ScenarioGenerator`](ecofusion_scene::ScenarioGenerator) whose
//!   context drifts over time, rolled forward in
//!   [`SceneSequence`](ecofusion_scene::SceneSequence) segments and
//!   rendered through the sensor suite.
//! * [`FrameQueue`] — a bounded per-stream queue. When full, the
//!   [`BackpressurePolicy`] either drops the oldest queued frame
//!   (freshness wins) or stalls the producer (completeness wins).
//! * [`PerceptionServer`] — the scheduler: each processing step pops
//!   ready frames round-robin across streams, groups them by their
//!   stream's current [`InferenceOptions`](ecofusion_core::InferenceOptions),
//!   and feeds each group through one batched staged-pipeline call, with
//!   one [`StemFeatureCache`](ecofusion_core::StemFeatureCache) per
//!   stream so unchanged grids (frozen-frame faults, static scenes)
//!   reuse stem features instead of re-running convolutions. Results are
//!   bit-identical to running per-stream sequential `infer` (guaranteed by
//!   the batched path and asserted by this crate's tests); stem
//!   executions saved by demand-driven pruning and cache hits surface in
//!   [`StreamReport`].
//! * [`BudgetController`] — per-stream rolling energy accounting. When the
//!   rolling mean total (platform + clock-gated sensor) energy exceeds the
//!   stream's [`EnergyBudget`], the controller escalates along a
//!   [`PolicyStep`] ladder (raising `λ_E`, ultimately switching to the
//!   knowledge gate); when spend falls well below budget it relaxes back.
//! * [`StreamTelemetry`] / [`RuntimeReport`] — per-stream frames, energy,
//!   latency, queue waits, drops, detection accuracy, and sensor-health
//!   counters (degraded/masked frames, health transitions), rolled into
//!   an [`EvalSummary`](ecofusion_eval::EvalSummary) per stream.
//! * **Fault tolerance** — [`VehicleStream::with_faults`] attaches an
//!   [`ecofusion_faults::FaultSchedule`] to a stream's observations; each
//!   lane runs an [`ecofusion_faults::SensorHealthMonitor`], and with
//!   [`StreamSpec::health_gating`] enabled the monitor's availability
//!   mask feeds the stream's
//!   [`InferenceOptions`](ecofusion_core::InferenceOptions) so gating
//!   steers away from dead sensors (surviving budget-ladder moves).
//!   Malformed frames are rejected at ingest with
//!   [`IngestOutcome::RejectedMalformed`] instead of panicking, so one
//!   broken producer cannot take down the server.

pub mod budget;
pub mod hist;
pub mod queue;
pub mod scheduler;
pub mod shard;
pub mod stream;
pub mod telemetry;

pub use budget::{
    redistribute_headroom, BudgetController, BudgetPhase, BudgetPosture, BudgetTimeline,
    EnergyBudget, FleetBudgetPolicy, PolicyStep,
};
pub use hist::LatencyHistogram;
pub use queue::{BackpressurePolicy, FrameQueue, IngestOutcome};
pub use scheduler::{
    run_simulation, run_simulation_observed, PerceptionServer, RuntimeConfig, RuntimeReport,
    SimObserver, StepStats, StreamReport,
};
pub use shard::ShardReport;
pub use stream::{StreamSpec, VehicleStream};
pub use telemetry::StreamTelemetry;
