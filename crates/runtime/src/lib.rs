//! Multi-stream perception runtime.
//!
//! The paper evaluates EcoFusion one vehicle at a time; the production
//! target is a server that ingests **many concurrent vehicle streams** and
//! keeps each within its energy budget while amortizing compute across
//! them. This crate provides that layer on top of
//! [`EcoFusionModel::infer_batch`](ecofusion_core::EcoFusionModel::infer_batch):
//!
//! ```text
//!  VehicleStream 0 ──┐ (seeded SceneSequence + context drift)
//!  VehicleStream 1 ──┤
//!       ...          ├─▶ per-stream FrameQueue (bounded, backpressure)
//!  VehicleStream N ──┘            │
//!                                 ▼  round-robin coalescing
//!                     cross-stream micro-batch (≤ max_batch,
//!                     grouped by identical InferenceOptions)
//!                                 │
//!                                 ▼
//!                     EcoFusionModel::infer_batch_cached  (demanded
//!                     stems only + per-stream stem caches, one gate
//!                     pass, branches grouped over frames)
//!                                 │
//!              ┌──────────────────┼──────────────────┐
//!              ▼                  ▼                  ▼
//!      StreamTelemetry     BudgetController     RuntimeReport
//!      (energy/latency/    (rolling energy vs   (per-stream
//!       accuracy)           budget → policy      EvalSummary)
//!                           ladder)
//! ```
//!
//! * [`VehicleStream`] — a deterministic frame source: a seeded
//!   [`ScenarioGenerator`](ecofusion_scene::ScenarioGenerator) whose
//!   context drifts over time, rolled forward in
//!   [`SceneSequence`](ecofusion_scene::SceneSequence) segments and
//!   rendered through the sensor suite.
//! * [`FrameQueue`] — a bounded per-stream queue. When full, the
//!   [`BackpressurePolicy`] either drops the oldest queued frame
//!   (freshness wins) or stalls the producer (completeness wins).
//! * [`PerceptionServer`] — the scheduler: each processing step pops
//!   ready frames round-robin across streams, groups them by their
//!   stream's current [`InferenceOptions`](ecofusion_core::InferenceOptions),
//!   and feeds each group through one batched staged-pipeline call, with
//!   one [`StemFeatureCache`](ecofusion_core::StemFeatureCache) per
//!   stream so unchanged grids (frozen-frame faults, static scenes)
//!   reuse stem features instead of re-running convolutions. Results are
//!   bit-identical to running per-stream sequential `infer` (guaranteed by
//!   the batched path and asserted by this crate's tests); stem
//!   executions saved by demand-driven pruning and cache hits surface in
//!   [`StreamReport`].
//! * [`BudgetController`] — per-stream rolling energy accounting. When the
//!   rolling mean total (platform + clock-gated sensor) energy exceeds the
//!   stream's [`EnergyBudget`], the controller escalates along a
//!   [`PolicyStep`] ladder (raising `λ_E`, ultimately switching to the
//!   knowledge gate); when spend falls well below budget it relaxes back.
//! * [`StreamTelemetry`] / [`RuntimeReport`] — per-stream frames, energy,
//!   latency, queue waits, drops, detection accuracy, and sensor-health
//!   counters (degraded/masked frames, health transitions), rolled into
//!   an [`EvalSummary`](ecofusion_eval::EvalSummary) per stream.
//! * **Fault tolerance** — [`VehicleStream::with_faults`] attaches an
//!   [`ecofusion_faults::FaultSchedule`] to a stream's observations; each
//!   lane runs an [`ecofusion_faults::SensorHealthMonitor`], and with
//!   [`StreamSpec::health_gating`] enabled the monitor's availability
//!   mask feeds the stream's
//!   [`InferenceOptions`](ecofusion_core::InferenceOptions) so gating
//!   steers away from dead sensors (surviving budget-ladder moves).
//!   Malformed frames are rejected at ingest with
//!   [`IngestOutcome::RejectedMalformed`] instead of panicking, so one
//!   broken producer cannot take down the server.

pub mod budget;
pub mod hist;
pub mod queue;
pub mod scheduler;
pub mod stream;
pub mod telemetry;

pub use budget::{BudgetController, EnergyBudget, PolicyStep};
pub use hist::LatencyHistogram;
pub use queue::{BackpressurePolicy, FrameQueue, IngestOutcome};
pub use scheduler::{
    run_simulation, run_simulation_observed, PerceptionServer, RuntimeConfig, RuntimeReport,
    StreamReport,
};
pub use stream::{StreamSpec, VehicleStream};
pub use telemetry::StreamTelemetry;
