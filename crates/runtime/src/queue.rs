//! Bounded per-stream frame queues with explicit backpressure.

use ecofusion_core::Frame;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happens when a frame arrives at a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Evict the oldest queued frame to make room: the consumer always
    /// sees the freshest data (the right default for perception, where a
    /// stale frame is worthless).
    DropOldest,
    /// Reject the new frame: the producer must retry later, so no queued
    /// frame is ever lost (the right choice for offline replay).
    Stall,
}

/// Result of one [`FrameQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The frame was queued without displacing anything.
    Enqueued,
    /// The frame was queued and the oldest queued frame was evicted
    /// ([`BackpressurePolicy::DropOldest`]).
    DroppedOldest,
    /// The queue is full and the frame was not accepted
    /// ([`BackpressurePolicy::Stall`]).
    Rejected,
    /// The frame failed ingest validation (e.g. its grid does not match
    /// the serving model) and was discarded before queueing, so it can
    /// never poison a micro-batch. Emitted by the server, not the queue.
    RejectedMalformed,
}

/// A frame waiting to be scheduled, stamped with its arrival tick so the
/// scheduler can account queueing delay.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    /// The frame itself.
    pub frame: Frame,
    /// Scheduler tick at which the frame entered the queue.
    pub enqueue_tick: u64,
}

/// A bounded FIFO of frames for one stream.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::{BackpressurePolicy, FrameQueue};
/// let q = FrameQueue::new(4, BackpressurePolicy::DropOldest);
/// assert_eq!(q.capacity(), 4);
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct FrameQueue {
    buf: VecDeque<QueuedFrame>,
    capacity: usize,
    policy: BackpressurePolicy,
    dropped: u64,
    rejected: u64,
    high_water: usize,
}

impl FrameQueue {
    /// Creates a queue holding at most `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        FrameQueue {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            dropped: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Offers a frame to the queue at `tick`, applying the backpressure
    /// policy when full.
    pub fn push(&mut self, frame: Frame, tick: u64) -> IngestOutcome {
        let outcome = if self.buf.len() < self.capacity {
            IngestOutcome::Enqueued
        } else {
            match self.policy {
                BackpressurePolicy::DropOldest => {
                    self.buf.pop_front();
                    self.dropped += 1;
                    IngestOutcome::DroppedOldest
                }
                BackpressurePolicy::Stall => {
                    self.rejected += 1;
                    return IngestOutcome::Rejected;
                }
            }
        };
        self.buf.push_back(QueuedFrame { frame, enqueue_tick: tick });
        self.high_water = self.high_water.max(self.buf.len());
        outcome
    }

    /// Removes and returns the oldest queued frame.
    pub fn pop(&mut self) -> Option<QueuedFrame> {
        self.buf.pop_front()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the queue holds no frames.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether another push would trigger backpressure.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Maximum frames the queue holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Frames evicted under [`BackpressurePolicy::DropOldest`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes rejected under [`BackpressurePolicy::Stall`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_core::{Dataset, DatasetSpec};

    fn frames(n: usize) -> Vec<Frame> {
        let data = Dataset::generate(&DatasetSpec::small(3));
        data.test().iter().take(n).cloned().collect()
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FrameQueue::new(8, BackpressurePolicy::DropOldest);
        let fs = frames(3);
        for (t, f) in fs.iter().enumerate() {
            assert_eq!(q.push(f.clone(), t as u64), IngestOutcome::Enqueued);
        }
        for f in &fs {
            assert_eq!(q.pop().unwrap().frame.scene.id, f.scene.id);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_oldest_evicts_front() {
        let mut q = FrameQueue::new(2, BackpressurePolicy::DropOldest);
        let fs = frames(3);
        q.push(fs[0].clone(), 0);
        q.push(fs[1].clone(), 1);
        assert_eq!(q.push(fs[2].clone(), 2), IngestOutcome::DroppedOldest);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        // The oldest (fs[0]) is gone; fs[1] is now the front.
        assert_eq!(q.pop().unwrap().frame.scene.id, fs[1].scene.id);
    }

    #[test]
    fn stall_rejects_and_keeps_queue() {
        let mut q = FrameQueue::new(1, BackpressurePolicy::Stall);
        let fs = frames(2);
        q.push(fs[0].clone(), 0);
        assert_eq!(q.push(fs[1].clone(), 1), IngestOutcome::Rejected);
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.dropped(), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().frame.scene.id, fs[0].scene.id);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = FrameQueue::new(4, BackpressurePolicy::Stall);
        let fs = frames(3);
        for (t, f) in fs.iter().enumerate() {
            q.push(f.clone(), t as u64);
        }
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = FrameQueue::new(0, BackpressurePolicy::Stall);
    }
}
