//! The shard-determinism invariant, asserted end to end: per-stream
//! outputs, reports, and fleet aggregates are bit-identical for any shard
//! count, with work stealing on or off, and with the fleet budget
//! coordinator enabled — sharding may change throughput, never results.

use ecofusion_core::{EcoFusionModel, InferenceOptions};
use ecofusion_gating::GateKind;
use ecofusion_runtime::{
    run_simulation, BackpressurePolicy, EnergyBudget, FleetBudgetPolicy, PerceptionServer,
    RuntimeConfig, RuntimeReport, StreamSpec, VehicleStream,
};
use ecofusion_scene::Context;
use ecofusion_tensor::rng::Rng;

const GRID: usize = 32;

fn model(seed: u64) -> EcoFusionModel {
    EcoFusionModel::new(GRID, 8, &mut Rng::new(seed))
}

/// A deliberately heterogeneous fleet: mixed gates, energy weights,
/// budgets, emission timings, and one overloaded drop-oldest queue, so
/// the step mixes multiple option groups, backpressure, and ladder moves.
fn diverse_specs(n: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let mut spec = StreamSpec::new(300 + i as u64, GRID)
                .with_opts(InferenceOptions::new(0.01 * (1 + i % 3) as f64, 0.5))
                .with_timing(1 + (i % 3) as u64, (i % 2) as u64);
            if i % 2 == 1 {
                spec = spec.with_opts(spec.base_opts.with_gate(GateKind::Knowledge));
            }
            if i % 3 == 0 {
                spec = spec.with_budget(EnergyBudget::per_frame(6.0));
            }
            if i == 0 {
                spec = spec.with_queue(2, BackpressurePolicy::DropOldest);
            }
            spec
        })
        .collect()
}

fn run_fleet(
    seed: u64,
    specs: &[StreamSpec],
    cfg: RuntimeConfig,
    ticks: u64,
) -> (RuntimeReport, Vec<String>) {
    let mut server = PerceptionServer::new(model(seed), specs, cfg);
    let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut server, &mut streams, ticks).unwrap();
    let outputs = (0..specs.len())
        .map(|i| {
            let t = server.telemetry(i);
            format!("{:?}|{:?}", t.selected_configs(), t.detections())
        })
        .collect();
    (server.report(), outputs)
}

/// Everything the invariant covers, as one comparable string: per-stream
/// reports (serialized, bitwise via JSON of exact floats) plus the
/// shard-invariant fleet aggregates with float bits spelled out.
/// Deliberately excludes `batches`/`avg_batch_size` (units are
/// per-shard, so batch composition legitimately varies) and the
/// host-dependent `shards[].busy_ms`.
fn fingerprint(report: &RuntimeReport) -> String {
    let per_stream = serde_json::to_string(&report.per_stream).unwrap();
    format!(
        "{per_stream}|frames={} platform={:016x} gated={:016x} stems={}+{} lat={:016x}/{:016x}/{:016x}/{:016x}/{:016x} granted={:016x}",
        report.frames,
        report.total_platform_j.to_bits(),
        report.total_gated_j.to_bits(),
        report.total_stems_executed,
        report.total_stems_saved,
        report.latency_mean_ms.to_bits(),
        report.latency_p50_ms.to_bits(),
        report.latency_p95_ms.to_bits(),
        report.latency_p99_ms.to_bits(),
        report.latency_max_ms.to_bits(),
        report.total_granted_j.to_bits(),
    )
}

#[test]
fn reports_bit_identical_across_shard_counts() {
    let specs = diverse_specs(6);
    let cfg = |shards| RuntimeConfig::default().with_shards(shards);
    let (base_report, base_outputs) = run_fleet(42, &specs, cfg(1), 20);
    assert_eq!(base_report.shards.len(), 1);
    for shards in [2usize, 4] {
        let (report, outputs) = run_fleet(42, &specs, cfg(shards), 20);
        assert_eq!(report.shards.len(), shards, "shard roster");
        assert_eq!(outputs, base_outputs, "{shards}-shard outputs diverged");
        assert_eq!(
            fingerprint(&report),
            fingerprint(&base_report),
            "{shards}-shard report diverged"
        );
        // Work accounting stays complete: every frame ran on some shard.
        let executed: u64 = report.shards.iter().map(|s| s.frames).sum();
        assert_eq!(executed, report.frames);
        let homed: usize = report.shards.iter().map(|s| s.streams).sum();
        assert_eq!(homed, specs.len());
    }
}

#[test]
fn work_stealing_is_invisible_in_outputs() {
    let specs = diverse_specs(6);
    let cfg = |stealing| RuntimeConfig::default().with_shards(4).with_work_stealing(stealing);
    let (with_steal, outputs_steal) = run_fleet(43, &specs, cfg(true), 20);
    let (without, outputs_plain) = run_fleet(43, &specs, cfg(false), 20);
    assert_eq!(outputs_steal, outputs_plain);
    assert_eq!(fingerprint(&with_steal), fingerprint(&without));
    let steals: u64 = without.shards.iter().map(|s| s.steals).sum();
    assert_eq!(steals, 0, "stealing off must never steal");
}

/// One saturated shard, one starved: shard 0 owns four every-tick streams
/// with distinct options (four units per step), shard 1 owns two streams
/// that emit every sixth tick — so its worker drains almost immediately
/// and must steal to stay busy. Outputs still match the 1-shard run
/// exactly, and the steal counters prove the path actually ran.
#[test]
fn stealing_under_imbalance_preserves_outputs() {
    let specs: Vec<StreamSpec> = (0..6)
        .map(|i| {
            let spec = StreamSpec::new(800 + i as u64, GRID)
                .with_opts(InferenceOptions::new(0.01 * (1 + i) as f64, 0.5));
            if i % 2 == 0 {
                spec // home shard 0: emits every tick
            } else {
                spec.with_timing(6, 3) // home shard 1: mostly idle
            }
        })
        .collect();
    let ticks = 32;
    let (sharded, sharded_outputs) =
        run_fleet(44, &specs, RuntimeConfig::default().with_shards(2), ticks);
    let (serial, serial_outputs) =
        run_fleet(44, &specs, RuntimeConfig::default().with_shards(1), ticks);
    assert_eq!(sharded_outputs, serial_outputs, "stolen work changed outputs");
    assert_eq!(fingerprint(&sharded), fingerprint(&serial));
    let steals: u64 = sharded.shards.iter().map(|s| s.steals).sum();
    assert!(steals > 0, "starved shard never stole: {:?}", sharded.shards);
    let stolen: u64 = sharded.shards.iter().map(|s| s.stolen_frames).sum();
    assert!(stolen > 0);
}

/// The fleet budget coordinator composes with sharding: grants are
/// computed from shard-invariant rolling means at the step barrier, so
/// coordinated runs are bit-identical across shard counts — and the
/// grants actually change behavior (a receiver stream stays on its base
/// policy on donated headroom where an uncoordinated twin escalates).
#[test]
fn fleet_budget_coordinator_is_shard_invariant_and_grants_headroom() {
    // Fixed City context + knowledge gate: a stable ≈5.5 J/frame draw.
    // The donor (12 J target, short window) has standing headroom; the
    // receiver (4.5 J target, window 8) runs hot. Grants flow once the
    // donor's window fills at tick 2 — before the receiver's first
    // full-window check at tick 8 — so the granted receiver never
    // escalates while the uncoordinated one must.
    let base = StreamSpec::new(77, GRID)
        .with_context(Context::City)
        .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge));
    let base = StreamSpec { dwell_frames: 64, drift_stay_prob: 1.0, ..base };
    let specs = [
        base.with_budget(EnergyBudget { target_j: 12.0, window: 2, relax_margin: 0.5 }),
        StreamSpec { seed: 78, ..base }.with_budget(EnergyBudget {
            target_j: 4.5,
            window: 8,
            relax_margin: 0.5,
        }),
    ];
    let policy = FleetBudgetPolicy::default();
    let ticks = 24;

    let coordinated = |shards| {
        run_fleet(
            45,
            &specs,
            RuntimeConfig::default().with_shards(shards).with_fleet_budget(policy),
            ticks,
        )
    };
    let (one_shard, one_outputs) = coordinated(1);
    let (two_shard, two_outputs) = coordinated(2);
    assert_eq!(one_outputs, two_outputs);
    assert_eq!(fingerprint(&one_shard), fingerprint(&two_shard));

    let (plain, _) = run_fleet(45, &specs, RuntimeConfig::default().with_shards(2), ticks);
    assert!(one_shard.total_granted_j > 0.0, "no headroom flowed");
    assert_eq!(one_shard.per_stream[0].granted_j, 0.0, "donor draws nothing");
    assert!(one_shard.per_stream[1].granted_j > 0.0, "receiver holds a grant");
    assert!(plain.per_stream[1].escalations > 0, "uncoordinated receiver must escalate");
    assert_eq!(
        one_shard.per_stream[1].escalations, 0,
        "granted receiver should ride donated headroom"
    );
    // Grants change policy pressure, not accounting: the uncoordinated
    // run's donor is untouched by the coordinator.
    assert_eq!(plain.per_stream[0].escalations, 0);
}
