//! Integration tests of the multi-stream runtime: bit-identical batching,
//! energy-telemetry consistency, budget adaptation, backpressure, and
//! end-to-end determinism.

use ecofusion_core::{EcoFusionModel, InferenceOutput};
use ecofusion_gating::GateKind;
use ecofusion_runtime::{
    run_simulation, BackpressurePolicy, EnergyBudget, PerceptionServer, RuntimeConfig, StreamSpec,
    VehicleStream,
};
use ecofusion_tensor::rng::Rng;

const GRID: usize = 32;
const NUM_CLASSES: usize = 8;

fn model(seed: u64) -> EcoFusionModel {
    EcoFusionModel::new(GRID, NUM_CLASSES, &mut Rng::new(seed))
}

fn specs(n: usize) -> Vec<StreamSpec> {
    (0..n).map(|i| StreamSpec::new(100 + i as u64, GRID)).collect()
}

/// The acceptance property: frames scheduled through cross-stream
/// micro-batches produce exactly the outputs of per-stream sequential
/// `infer` on an identically-seeded model.
#[test]
fn cross_stream_batching_bit_identical_to_sequential() {
    let specs = specs(3);
    let frames_per_stream = 6usize;

    // Batched path: live simulation through the server.
    let mut server = PerceptionServer::new(
        model(42),
        &specs,
        RuntimeConfig { max_batch: 4, num_classes: 8, ..RuntimeConfig::default() },
    );
    let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut server, &mut streams, frames_per_stream as u64).unwrap();

    // Sequential path: twin model (same seed => identical weights), twin
    // streams (same specs => identical frames), plain `infer` per frame.
    let mut twin = model(42);
    for (i, spec) in specs.iter().enumerate() {
        let mut stream = VehicleStream::new(*spec);
        let expected: Vec<InferenceOutput> = stream
            .generate(frames_per_stream)
            .iter()
            .map(|f| twin.infer(f, &spec.base_opts).unwrap())
            .collect();
        let telemetry = server.telemetry(i);
        assert_eq!(telemetry.frames() as usize, frames_per_stream, "stream {i}");
        for (k, out) in expected.iter().enumerate() {
            assert_eq!(
                telemetry.selected_configs()[k],
                out.selected_config,
                "stream {i} frame {k}: selected config diverged"
            );
            assert_eq!(
                telemetry.detections()[k],
                out.detections,
                "stream {i} frame {k}: detections diverged"
            );
        }
        let platform: f64 = expected.iter().map(|o| o.energy.platform.joules()).sum();
        assert!((telemetry.platform_j() - platform).abs() < 1e-12, "stream {i} energy");
    }
}

/// Per-stream energy telemetry must sum exactly to the report totals.
#[test]
fn per_stream_energy_sums_to_report_total() {
    let specs = specs(4);
    let mut server = PerceptionServer::new(model(7), &specs, RuntimeConfig::default());
    let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut server, &mut streams, 8).unwrap();
    let report = server.report();
    assert!(report.frames > 0);
    let platform: f64 = report.per_stream.iter().map(|s| s.total_platform_j).sum();
    let gated: f64 = report.per_stream.iter().map(|s| s.total_gated_j).sum();
    assert!((report.total_platform_j - platform).abs() < 1e-12);
    assert!((report.total_gated_j - gated).abs() < 1e-12);
    for s in &report.per_stream {
        // Per-stream: summary means times frame count reproduce the totals.
        assert!(
            (s.summary.avg_total_gated_j * s.summary.frames as f64 - s.total_gated_j).abs() < 1e-9
        );
        assert!(s.total_gated_j >= s.total_platform_j, "sensor energy is non-negative");
        assert!(s.total_platform_j > 0.0);
    }
}

/// A stream with a starvation-level budget escalates along the ladder and
/// spends less energy per frame than an unbudgeted twin.
#[test]
fn tight_budget_escalates_and_cuts_energy() {
    // Knowledge gate in a fixed City context: the rule always executes
    // early-3 (≈ 5.5 J/frame with gated sensors) — comfortably above the
    // 4 J budget, so the controller must climb the ladder; the emergency
    // rung (all candidates, λ_E = 1) caps spend at the cheapest branch.
    let mut base = StreamSpec::new(55, GRID)
        .with_opts(ecofusion_core::InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge));
    base.drift_stay_prob = 1.0; // hold the city context for the whole run
    let tight = base.with_budget(EnergyBudget { target_j: 4.0, window: 4, relax_margin: 0.4 });
    let ticks = 48u64;

    let mut free_server = PerceptionServer::new(model(3), &[base], RuntimeConfig::default());
    let mut free_streams = vec![VehicleStream::new(base)];
    run_simulation(&mut free_server, &mut free_streams, ticks).unwrap();
    let free = &free_server.report().per_stream[0];

    let mut tight_server = PerceptionServer::new(model(3), &[tight], RuntimeConfig::default());
    let mut tight_streams = vec![VehicleStream::new(tight)];
    run_simulation(&mut tight_server, &mut tight_streams, ticks).unwrap();
    let constrained = &tight_server.report().per_stream[0];

    assert_eq!(free.escalations, 0, "unlimited budget must not adapt");
    assert!(constrained.escalations > 0, "tight budget must escalate");
    assert!(constrained.final_level > 0);
    assert!(constrained.final_lambda_e > base.base_opts.lambda_e);
    assert!(
        constrained.summary.avg_total_gated_j < free.summary.avg_total_gated_j,
        "budgeted stream should spend less: {} vs {}",
        constrained.summary.avg_total_gated_j,
        free.summary.avg_total_gated_j
    );
}

/// Overloaded drop-oldest queues drop frames and record it; stall queues
/// lose nothing but defer the producer.
#[test]
fn backpressure_policies_account_overload() {
    // Two streams emitting every tick, server processing at most one frame
    // per tick => sustained 2x overload, tiny queues.
    let overload = |policy| {
        let specs: Vec<StreamSpec> =
            (0..2).map(|i| StreamSpec::new(70 + i, GRID).with_queue(2, policy)).collect();
        let mut server = PerceptionServer::new(
            model(5),
            &specs,
            RuntimeConfig { max_batch: 1, num_classes: 8, ..RuntimeConfig::default() },
        );
        let mut streams: Vec<VehicleStream> =
            specs.iter().map(|s| VehicleStream::new(*s)).collect();
        run_simulation(&mut server, &mut streams, 16).unwrap();
        server.report()
    };

    let dropping = overload(BackpressurePolicy::DropOldest);
    let total_dropped: u64 = dropping.per_stream.iter().map(|s| s.dropped).sum();
    assert!(total_dropped > 0, "2x overload with depth-2 queues must drop");
    assert!(dropping.per_stream.iter().all(|s| s.stalls == 0));
    assert!(dropping.per_stream.iter().all(|s| s.queue_high_water <= 2));

    let stalling = overload(BackpressurePolicy::Stall);
    let total_stalls: u64 = stalling.per_stream.iter().map(|s| s.stalls).sum();
    assert!(total_stalls > 0, "2x overload with stall policy must stall producers");
    assert!(stalling.per_stream.iter().all(|s| s.dropped == 0));
    // Stalled producers deferred frames; drained total is what was accepted.
    assert!(stalling.frames < dropping.frames + total_dropped);
}

/// The whole simulation is deterministic: two identically-configured runs
/// produce identical reports.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| {
                StreamSpec::new(200 + i, GRID)
                    .with_budget(EnergyBudget::per_frame(6.0))
                    .with_timing(1 + i % 2, i)
            })
            .collect();
        let mut server = PerceptionServer::new(model(11), &specs, RuntimeConfig::default());
        let mut streams: Vec<VehicleStream> =
            specs.iter().map(|s| VehicleStream::new(*s)).collect();
        run_simulation(&mut server, &mut streams, 20).unwrap();
        server.report()
    };
    let a = run();
    let b = run();
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.total_platform_j, b.total_platform_j);
    for (x, y) in a.per_stream.iter().zip(&b.per_stream) {
        assert_eq!(x.summary.config_histogram, y.summary.config_histogram);
        assert_eq!(x.summary.map_pct, y.summary.map_pct);
        assert_eq!(x.dropped, y.dropped);
        assert_eq!(x.final_level, y.final_level);
        assert_eq!(x.total_gated_j, y.total_gated_j);
    }
}

/// Malformed frames are refused at the ingest boundary, so a bad frame
/// can never fail a micro-batch mid-step and take healthy frames with it
/// — and the refusal is a counted outcome, not a server-killing panic.
#[test]
fn ingest_rejects_wrong_grid_frame() {
    let specs = specs(1);
    let mut server = PerceptionServer::new(model(17), &specs, RuntimeConfig::default());
    let mut wrong = VehicleStream::new(StreamSpec::new(500, 48));
    assert_eq!(
        server.ingest(0, wrong.next_frame()),
        ecofusion_runtime::IngestOutcome::RejectedMalformed
    );
    // The server keeps serving: a healthy frame on the same stream still
    // goes through.
    let mut healthy = VehicleStream::new(specs[0]);
    assert_eq!(server.ingest(0, healthy.next_frame()), ecofusion_runtime::IngestOutcome::Enqueued);
    assert_eq!(server.drain().unwrap(), 1);
    let report = server.report();
    assert_eq!(report.per_stream[0].rejected_malformed, 1);
    assert_eq!(report.frames, 1);
}

/// Direct ingest against a full stall-policy queue counts as a stall in
/// the report, without the simulation driver's record_stall protocol.
#[test]
fn direct_ingest_rejection_counts_as_stall() {
    let spec = specs(1)[0].with_queue(1, BackpressurePolicy::Stall);
    let mut server = PerceptionServer::new(model(19), &[spec], RuntimeConfig::default());
    let mut stream = VehicleStream::new(spec);
    assert_eq!(server.ingest(0, stream.next_frame()), ecofusion_runtime::IngestOutcome::Enqueued);
    assert_eq!(server.ingest(0, stream.next_frame()), ecofusion_runtime::IngestOutcome::Rejected);
    server.drain().unwrap();
    let report = server.report();
    assert_eq!(report.per_stream[0].stalls, 1);
    assert_eq!(report.per_stream[0].dropped, 0);
    assert_eq!(report.frames, 1);
}

/// Micro-batches actually coalesce frames from different streams.
#[test]
fn batches_span_streams() {
    let specs = specs(4);
    // Batch composition is the one thing that legitimately varies with the
    // shard count (units are per-shard), so this test pins one shard.
    let cfg =
        RuntimeConfig { max_batch: 8, num_classes: 8, ..RuntimeConfig::default() }.with_shards(1);
    let mut server = PerceptionServer::new(model(13), &specs, cfg);
    let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut server, &mut streams, 6).unwrap();
    let report = server.report();
    // 4 streams emit per tick and the batch cap is 8: every step coalesces
    // all four streams into one micro-batch.
    assert!(report.avg_batch_size > 3.0, "avg batch {}", report.avg_batch_size);
    assert_eq!(report.frames, 24);
}

/// Clean streams with fault-aware gating enabled behave bit-identically
/// to streams without it: the monitor stays healthy, the mask stays
/// all-available, and every decision matches.
#[test]
fn health_gating_is_identity_on_clean_streams() {
    let frames = 8u64;
    let plain_specs = specs(2);
    let gated_specs: Vec<StreamSpec> =
        plain_specs.iter().map(|s| s.with_health_gating(true)).collect();

    let mut plain = PerceptionServer::new(
        model(23),
        &plain_specs,
        RuntimeConfig { max_batch: 4, num_classes: 8, ..RuntimeConfig::default() },
    );
    let mut plain_streams: Vec<VehicleStream> =
        plain_specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut plain, &mut plain_streams, frames).unwrap();

    let mut gated = PerceptionServer::new(
        model(23),
        &gated_specs,
        RuntimeConfig { max_batch: 4, num_classes: 8, ..RuntimeConfig::default() },
    );
    let mut gated_streams: Vec<VehicleStream> =
        gated_specs.iter().map(|s| VehicleStream::new(*s)).collect();
    run_simulation(&mut gated, &mut gated_streams, frames).unwrap();

    for i in 0..plain_specs.len() {
        assert_eq!(
            plain.telemetry(i).selected_configs(),
            gated.telemetry(i).selected_configs(),
            "stream {i}"
        );
        assert_eq!(plain.telemetry(i).detections(), gated.telemetry(i).detections(), "stream {i}");
    }
    let report = gated.report();
    for s in &report.per_stream {
        assert!(s.health_gating);
        assert_eq!(s.masked_frames, 0);
        assert!(s.final_mask.is_all_available());
    }
}

/// A camera-dropout schedule drives the lane monitor to mask the cameras,
/// and the fault-aware knowledge gate reroutes to camera-free
/// configurations while the fault-blind twin keeps running camera-based
/// ones.
#[test]
fn fault_aware_gate_reroutes_under_camera_dropout() {
    use ecofusion_core::InferenceOptions;
    use ecofusion_faults::FaultSchedule;
    use ecofusion_scene::Context;
    use ecofusion_sensors::SensorKind;

    let ticks = 24u64;
    let onset = 6u64;
    let base = StreamSpec::new(700, GRID)
        .with_context(Context::City)
        .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge));
    // Long dwell keeps the stream in City for the whole run, so the
    // knowledge gate's clean choice is stable.
    let base = StreamSpec { dwell_frames: 64, drift_stay_prob: 1.0, ..base };
    let schedule = FaultSchedule::empty().with_camera_dropout(onset, u64::MAX);

    let run = |health_gating: bool| {
        let spec = base.with_health_gating(health_gating);
        let mut server = PerceptionServer::new(
            model(29),
            &[spec],
            RuntimeConfig { max_batch: 2, num_classes: 8, ..RuntimeConfig::default() },
        );
        let mut streams = vec![VehicleStream::new(spec).with_faults(schedule.clone())];
        run_simulation(&mut server, &mut streams, ticks).unwrap();
        let labels: Vec<String> = {
            let t = server.telemetry(0);
            t.selected_configs().iter().map(|c| format!("{:?}", c)).collect()
        };
        (server.report(), labels)
    };

    let (blind_report, blind_labels) = run(false);
    let (aware_report, aware_labels) = run(true);

    // Pre-onset decisions agree (clean frames, healthy mask).
    assert_eq!(blind_labels[..onset as usize], aware_labels[..onset as usize]);
    // The aware server masked the cameras and changed its decisions.
    let aware = &aware_report.per_stream[0];
    assert!(aware.masked_frames > 0, "mask never engaged");
    assert!(!aware.final_mask.is_available(SensorKind::CameraLeft));
    assert!(!aware.final_mask.is_available(SensorKind::CameraRight));
    assert!(aware.health_transitions > 0);
    assert!(aware.degraded_frames >= aware.masked_frames);
    // The blind server saw the same degradation in telemetry but kept its
    // camera-based decisions.
    let blind = &blind_report.per_stream[0];
    assert!(blind.degraded_frames > 0);
    assert_eq!(blind.masked_frames, 0, "gating off must never mask");
    assert_ne!(
        blind_labels.last(),
        aware_labels.last(),
        "fault-aware gate should have rerouted away from the cameras"
    );
    // Reproducibility: the aware run is deterministic end to end.
    let (aware_again, labels_again) = run(true);
    assert_eq!(aware_labels, labels_again);
    assert_eq!(aware.masked_frames, aware_again.per_stream[0].masked_frames);
}

/// When several frames of one lane are coalesced into a single step, all
/// of them execute under the lane's final mask and the masked-frame
/// counter describes exactly that mask — no half-counted steps.
#[test]
fn multi_frame_pop_counts_against_executed_mask() {
    use ecofusion_core::InferenceOptions;
    use ecofusion_faults::FaultSchedule;
    use ecofusion_scene::Context;

    let spec = StreamSpec::new(900, GRID)
        .with_context(Context::City)
        .with_queue(8, BackpressurePolicy::DropOldest)
        .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge))
        .with_health_gating(true);
    let spec = StreamSpec { dwell_frames: 64, drift_stay_prob: 1.0, ..spec };
    // Cameras dead from the very first frame: the monitor reaches Failed
    // shortly after its warmup window.
    let schedule = FaultSchedule::empty().with_camera_dropout(0, u64::MAX);
    let mut stream = VehicleStream::new(spec).with_faults(schedule);
    let mut server = PerceptionServer::new(
        model(31),
        &[spec],
        RuntimeConfig { max_batch: 4, num_classes: 8, ..RuntimeConfig::default() },
    );

    // Step 1: four frames in one batch, all inside the monitor warmup.
    for _ in 0..4 {
        server.ingest(0, stream.next_frame());
    }
    assert_eq!(server.process_step().unwrap(), 4);
    let after_warmup = server.telemetry(0).masked_frames();
    assert_eq!(after_warmup, 0, "warmup frames must not count as masked");

    // Step 2: four more frames in one batch; the monitor fails the
    // cameras while absorbing them, so the whole batch runs (and counts)
    // under the engaged mask.
    for _ in 0..4 {
        server.ingest(0, stream.next_frame());
    }
    assert_eq!(server.process_step().unwrap(), 4);
    let report = server.report();
    let s = &report.per_stream[0];
    assert_eq!(s.masked_frames, 4, "whole batch must count against the executed mask");
    assert!(!s.final_mask.is_available(ecofusion_sensors::SensorKind::CameraLeft));
    // The options in force reflect the same mask telemetry counted.
    assert_eq!(server.stream_options(0).health, s.final_mask);
}
