//! The event vocabulary: tracks, kinds, and argument values.

/// Where an event belongs in the trace. Exporters render each variant as
/// its own timeline: one track per vehicle stream, one per worker shard,
/// and one for the global scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// A vehicle stream (lane index in the server).
    Stream(u32),
    /// A worker shard.
    Shard(u32),
    /// The global serial scheduler (pick phase, step stats).
    Scheduler,
}

/// What an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span on the event's track. Spans on one track must nest:
    /// every `Begin` is closed by the `End` with the same name, in LIFO
    /// order (the property tests assert this).
    Begin,
    /// Closes the innermost open span on the track.
    End,
    /// A point-in-time marker (a decision, a fault, a steal).
    Instant,
    /// A sampled numeric value (queue depth, batch size).
    Counter,
}

/// A typed event argument. Kept as an enum (not stringified) so tests
/// can compare exact numeric payloads — e.g. that per-stage span energy
/// sums to the frame's `StageTrace` total bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (ids, counts, levels).
    U64(u64),
    /// Float (energy Joules, latency ms, counter samples).
    F64(f64),
    /// Static label (stage names, precisions, directions).
    Str(&'static str),
    /// Owned text (configuration labels, stream lists).
    Text(String),
}

/// One recorded trace event.
///
/// `seq` is the global emission index (monotonic across the whole run,
/// still advancing when the ring drops old events), `t_ns` the virtual
/// timestamp — see [`crate::TICK_NS`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission index (0-based; survives ring overflow).
    pub seq: u64,
    /// The timeline this event belongs to.
    pub track: Track,
    /// Virtual timestamp, nanoseconds.
    pub t_ns: u64,
    /// Event name (the span/marker/counter label).
    pub name: &'static str,
    /// Span begin/end, instant, or counter.
    pub kind: EventKind,
    /// Typed key/value payload (empty for most `End` events).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The argument under `key` as an `f64`, if present and numeric.
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        match self.arg(key)? {
            ArgValue::F64(v) => Some(*v),
            ArgValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_lookup_by_key_and_type() {
        let e = Event {
            seq: 0,
            track: Track::Stream(3),
            t_ns: 42,
            name: "frame",
            kind: EventKind::Begin,
            args: vec![("config", ArgValue::U64(7)), ("energy_j", ArgValue::F64(0.25))],
        };
        assert_eq!(e.arg_f64("config"), Some(7.0));
        assert_eq!(e.arg_f64("energy_j"), Some(0.25));
        assert_eq!(e.arg("missing"), None);
        assert_eq!(e.arg_f64("missing"), None);
    }

    #[test]
    fn tracks_order_streams_before_shards() {
        assert!(Track::Stream(9) < Track::Shard(0));
        assert!(Track::Shard(9) < Track::Scheduler);
    }
}
