//! Chrome `trace_event` JSON export (Perfetto / `chrome://tracing`).

use crate::event::{ArgValue, Event, EventKind, Track};
use crate::sink::TraceSink;
use serde::Value;
use std::collections::BTreeSet;

/// Process ids the tracks are grouped under in the viewer: every stream
/// is a thread of the "streams" process, every shard a thread of
/// "shards", and the scheduler its own process.
const PID_STREAMS: u64 = 1;
const PID_SHARDS: u64 = 2;
const PID_SCHEDULER: u64 = 3;

fn pid_tid(track: Track) -> (u64, u64) {
    match track {
        Track::Stream(i) => (PID_STREAMS, i as u64),
        Track::Shard(i) => (PID_SHARDS, i as u64),
        Track::Scheduler => (PID_SCHEDULER, 0),
    }
}

fn category(track: Track) -> &'static str {
    match track {
        Track::Stream(_) => "stream",
        Track::Shard(_) => "shard",
        Track::Scheduler => "sched",
    }
}

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(n) => Value::U64(*n),
        ArgValue::F64(f) => Value::F64(*f),
        ArgValue::Str(s) => Value::Str((*s).to_string()),
        ArgValue::Text(s) => Value::Str(s.clone()),
    }
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Value {
    let mut obj = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        obj.push(("tid".to_string(), Value::U64(tid)));
    }
    obj.push((
        "args".to_string(),
        Value::Map(vec![("name".to_string(), Value::Str(value.to_string()))]),
    ));
    Value::Map(obj)
}

fn trace_event(event: &Event) -> Value {
    let (pid, tid) = pid_tid(event.track);
    let ph = match event.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    };
    let mut obj = vec![
        ("name".to_string(), Value::Str(event.name.to_string())),
        ("cat".to_string(), Value::Str(category(event.track).to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        // trace_event timestamps are microseconds; integer division keeps
        // the export exactly reproducible.
        ("ts".to_string(), Value::U64(event.t_ns / 1_000)),
        ("pid".to_string(), Value::U64(pid)),
        ("tid".to_string(), Value::U64(tid)),
    ];
    if event.kind == EventKind::Instant {
        // Thread-scoped instant (renders as an arrow on its own track).
        obj.push(("s".to_string(), Value::Str("t".to_string())));
    }
    if !event.args.is_empty() {
        let args: Vec<(String, Value)> =
            event.args.iter().map(|(k, v)| ((*k).to_string(), arg_value(v))).collect();
        obj.push(("args".to_string(), Value::Map(args)));
    }
    Value::Map(obj)
}

/// Renders the sink's retained events as a Chrome `trace_event` JSON
/// document (object form, `traceEvents` array), with one named thread
/// track per stream and per shard plus a scheduler track. Load the file
/// in <https://ui.perfetto.dev> or `chrome://tracing`.
///
/// The export is a pure function of the recorded events: a seeded run's
/// trace serializes bit-identically on every host.
pub fn chrome_trace_json(sink: &TraceSink) -> String {
    let tracks: BTreeSet<Track> = sink.events().map(|e| e.track).collect();
    let mut events: Vec<Value> = Vec::with_capacity(sink.len() + 2 * tracks.len() + 3);
    // Name the process groups that actually occur, then each thread.
    let pids: BTreeSet<u64> = tracks.iter().map(|&t| pid_tid(t).0).collect();
    for pid in pids {
        let name = match pid {
            PID_STREAMS => "streams",
            PID_SHARDS => "shards",
            _ => "scheduler",
        };
        events.push(metadata("process_name", pid, None, name));
    }
    for &track in &tracks {
        let (pid, tid) = pid_tid(track);
        let label = match track {
            Track::Stream(i) => format!("stream {i}"),
            Track::Shard(i) => format!("shard {i}"),
            Track::Scheduler => "scheduler".to_string(),
        };
        events.push(metadata("thread_name", pid, Some(tid), &label));
    }
    events.extend(sink.events().map(trace_event));
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Map(vec![
                ("dropped_events".to_string(), Value::U64(sink.dropped())),
                ("total_emitted".to_string(), Value::U64(sink.total_emitted())),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("value trees always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::with_capacity(64);
        sink.begin(Track::Stream(0), 0, "frame", vec![("config", ArgValue::U64(2))]);
        sink.begin(Track::Stream(0), 0, "sense", vec![("energy_j", ArgValue::F64(0.5))]);
        sink.end(Track::Stream(0), 1_000, "sense");
        sink.end(Track::Stream(0), 1_000, "frame");
        sink.instant(Track::Shard(1), 500, "steal", vec![("victim", ArgValue::U64(0))]);
        sink.counter(Track::Scheduler, 0, "queued", 3.0);
        sink
    }

    #[test]
    fn export_parses_and_covers_every_event() {
        let sink = sample_sink();
        let json = chrome_trace_json(&sink);
        let doc: Value = serde_json::from_str(&json).expect("export must be valid JSON");
        let map = doc.as_map().expect("object form");
        let events = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .expect("traceEvents array");
        // 3 tracks => 3 process_name + 3 thread_name metadata events.
        assert_eq!(events.len(), sink.len() + 6);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_map())
            .filter_map(|m| m.iter().find(|(k, _)| k == "ph"))
            .filter_map(|(_, v)| v.as_str())
            .collect();
        for ph in ["M", "B", "E", "i", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph}");
        }
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace_json(&sample_sink()), chrome_trace_json(&sample_sink()));
    }

    #[test]
    fn empty_sink_exports_empty_trace() {
        let json = chrome_trace_json(&TraceSink::disabled());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v))
            .and_then(|v| v.as_seq())
            .unwrap();
        assert!(events.is_empty());
    }
}
