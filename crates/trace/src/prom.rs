//! Prometheus text-exposition snapshot of the sink's metric accumulators.

use crate::sink::TraceSink;
use std::fmt::Write;

/// The metric family a full series name belongs to (the part before the
/// label set).
fn family(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

/// Formats a counter value: integral counts render without a fraction,
/// everything else with full precision (Rust's shortest-roundtrip f64
/// formatting, so snapshots are deterministic).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the sink's metrics in the Prometheus text exposition format,
/// one `# TYPE` header per family, series sorted lexicographically (the
/// sink stores them in a BTree, so the snapshot is deterministic). Two
/// synthetic series describe the sink itself:
/// `ecofusion_trace_events_total` (all events ever emitted) and
/// `ecofusion_trace_dropped_events_total` (evicted by the ring).
pub fn prometheus_snapshot(sink: &TraceSink) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for (series, value) in sink.metrics() {
        let fam = family(series);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam;
        }
        let _ = writeln!(out, "{series} {}", fmt_value(*value));
    }
    let _ = writeln!(out, "# TYPE ecofusion_trace_dropped_events_total counter");
    let _ = writeln!(out, "ecofusion_trace_dropped_events_total {}", sink.dropped());
    let _ = writeln!(out, "# TYPE ecofusion_trace_events_total counter");
    let _ = writeln!(out, "ecofusion_trace_events_total {}", sink.total_emitted());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_get_one_type_header_and_sorted_series() {
        let mut sink = TraceSink::with_capacity(8);
        sink.bump("ecofusion_frames_total{stream=\"1\"}", 2.0);
        sink.bump("ecofusion_frames_total{stream=\"0\"}", 3.0);
        sink.bump("ecofusion_steals_total", 1.5);
        let text = prometheus_snapshot(&sink);
        assert_eq!(text.matches("# TYPE ecofusion_frames_total counter").count(), 1);
        assert!(text.contains("ecofusion_frames_total{stream=\"0\"} 3\n"));
        assert!(text.contains("ecofusion_frames_total{stream=\"1\"} 2\n"));
        assert!(text.contains("ecofusion_steals_total 1.5\n"));
        let s0 = text.find("stream=\"0\"").unwrap();
        let s1 = text.find("stream=\"1\"").unwrap();
        assert!(s0 < s1, "series must be sorted");
    }

    #[test]
    fn sink_health_series_always_present() {
        let text = prometheus_snapshot(&TraceSink::disabled());
        assert!(text.contains("ecofusion_trace_dropped_events_total 0"));
        assert!(text.contains("ecofusion_trace_events_total 0"));
    }
}
