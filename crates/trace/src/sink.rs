//! The bounded ring-buffer event sink and metric accumulators.

use crate::event::{ArgValue, Event, EventKind, Track};
use std::collections::{BTreeMap, VecDeque};

/// A bounded, drop-oldest event ring plus monotonic metric counters.
///
/// * **Bounded**: at most `capacity` events are retained; pushing into a
///   full ring evicts the oldest event and increments
///   [`TraceSink::dropped`]. The retained window is always the *most
///   recent* events — the flight-recorder property.
/// * **Zero overhead when disabled**: every emission method returns at
///   its first branch on a disabled sink; instrumented code additionally
///   guards argument construction behind [`TraceSink::is_enabled`].
/// * **Single-writer**: the runtime only emits from the scheduler's
///   serial phases, so the sink needs no locks or atomics (see the crate
///   docs for why this also makes event order deterministic).
///
/// Metrics ([`TraceSink::bump`]) are independent of the ring: they are
/// monotonic accumulators keyed by full Prometheus-style series name
/// (labels included), never evicted, so the
/// [`prometheus_snapshot`](crate::prometheus_snapshot) stays exact over
/// the whole run even after the ring has wrapped many times.
#[derive(Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
    next_seq: u64,
    metrics: BTreeMap<String, f64>,
}

impl TraceSink {
    /// An enabled sink retaining at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (an enabled sink that can hold
    /// nothing is always a caller bug).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "an enabled sink needs a nonzero capacity");
        TraceSink { enabled: true, capacity, ..TraceSink::default() }
    }

    /// A disabled sink: every emission is a no-op, nothing allocates.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// Whether emissions are recorded. Instrumented code checks this
    /// before building argument vectors.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (retained + dropped).
    pub fn total_emitted(&self) -> u64 {
        self.next_seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Clones the retained events into a vector (test convenience; the
    /// golden-trace tests compare these with `==`).
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// The monotonic metric accumulators, keyed by full series name.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }

    /// Opens a span on `track`.
    pub fn begin(
        &mut self,
        track: Track,
        t_ns: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(track, t_ns, name, EventKind::Begin, args);
    }

    /// Closes the innermost open span on `track` (must carry the same
    /// name as its `begin`, which the nesting tests enforce).
    pub fn end(&mut self, track: Track, t_ns: u64, name: &'static str) {
        self.push(track, t_ns, name, EventKind::End, Vec::new());
    }

    /// Records a point-in-time marker.
    pub fn instant(
        &mut self,
        track: Track,
        t_ns: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(track, t_ns, name, EventKind::Instant, args);
    }

    /// Samples a counter value.
    pub fn counter(&mut self, track: Track, t_ns: u64, name: &'static str, value: f64) {
        self.push(track, t_ns, name, EventKind::Counter, vec![("value", ArgValue::F64(value))]);
    }

    /// Adds `delta` to the metric `series` (full Prometheus series name,
    /// labels included, e.g. `ecofusion_frames_total{stream="0"}`).
    pub fn bump(&mut self, series: &str, delta: f64) {
        if !self.enabled {
            return;
        }
        *self.metrics.entry(series.to_string()).or_insert(0.0) += delta;
    }

    fn push(
        &mut self,
        track: Track,
        t_ns: u64,
        name: &'static str,
        kind: EventKind,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(Event { seq, track, t_ns, name, kind, args });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(sink: &mut TraceSink, n: u64) {
        for i in 0..n {
            sink.instant(Track::Scheduler, i, "tickmark", Vec::new());
        }
    }

    /// The satellite ring-overflow contract: drop-oldest with an exact
    /// dropped count, while `seq` keeps numbering the full emission
    /// history.
    #[test]
    fn ring_drops_oldest_and_counts_exactly() {
        let mut sink = TraceSink::with_capacity(4);
        fill(&mut sink, 10);
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        assert_eq!(sink.total_emitted(), 10);
        // The retained window is the most recent events, oldest first.
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let ts: Vec<u64> = sink.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn exactly_full_ring_drops_nothing() {
        let mut sink = TraceSink::with_capacity(4);
        fill(&mut sink, 4);
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn disabled_sink_records_and_allocates_nothing() {
        let mut sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        fill(&mut sink, 100);
        sink.begin(Track::Stream(0), 0, "frame", vec![("k", ArgValue::U64(1))]);
        sink.end(Track::Stream(0), 1, "frame");
        sink.counter(Track::Scheduler, 0, "queued", 3.0);
        sink.bump("ecofusion_frames_total", 1.0);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.total_emitted(), 0);
        assert!(sink.metrics().is_empty());
    }

    #[test]
    fn metrics_survive_ring_overflow() {
        let mut sink = TraceSink::with_capacity(2);
        for _ in 0..50 {
            sink.instant(Track::Scheduler, 0, "e", Vec::new());
            sink.bump("ecofusion_steps_total", 1.0);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.metrics()["ecofusion_steps_total"], 50.0);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_enabled_sink_panics() {
        let _ = TraceSink::with_capacity(0);
    }
}
