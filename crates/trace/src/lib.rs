//! Structured tracing for the EcoFusion runtime: a bounded ring-buffer
//! event sink plus exporters.
//!
//! EcoFusion's value proposition is a per-frame runtime trade-off (Eq. 11:
//! energy vs. accuracy vs. latency, decided by the gate), but aggregate
//! counters can only say *that* a stream got expensive, never *why one
//! frame* took a path. This crate records the decision trail itself:
//!
//! * [`TraceSink`] — a bounded ring buffer of [`Event`]s. When full it
//!   drops the oldest event and counts the drop ([`TraceSink::dropped`]),
//!   so a long-lived server records the most recent window — a flight
//!   recorder, not an unbounded log. A disabled sink
//!   ([`TraceSink::disabled`]) rejects every emission at the first branch,
//!   so instrumented code costs nothing when tracing is off.
//! * [`Event`] / [`Track`] — span begin/end, instant, and counter events,
//!   each on a track: one per vehicle stream, one per worker shard, one
//!   for the global scheduler.
//! * [`chrome_trace_json`] — exports the ring as Chrome `trace_event`
//!   JSON, loadable in Perfetto or `chrome://tracing` (streams, shards,
//!   and the scheduler render as separate process groups).
//! * [`prometheus_snapshot`] — renders the sink's monotonic metric
//!   accumulators (which survive ring overflow) in the Prometheus text
//!   exposition format.
//!
//! # Determinism
//!
//! Timestamps are **virtual**, not wall clock: one scheduler tick is
//! [`TICK_NS`] nanoseconds and spans advance by the *modeled* stage
//! latency. A seeded run therefore emits a bit-identical event sequence
//! on every host and at every rerun — the golden-trace tests diff whole
//! event vectors with `==`.
//!
//! # Concurrency
//!
//! The sink is lock-free by construction rather than by synchronization:
//! every emission happens on the scheduler's serial phases (global pick,
//! post-join accounting), never on worker threads. Worker-side facts
//! (who executed a unit, whether it was stolen) are recorded into the
//! unit payload during execution and emitted serially afterwards, which
//! is also what makes the event *order* independent of thread timing.
//! There are no atomics or mutexes on the emission path.

pub mod chrome;
pub mod event;
pub mod prom;
pub mod sink;

pub use chrome::chrome_trace_json;
pub use event::{ArgValue, Event, EventKind, Track};
pub use prom::prometheus_snapshot;
pub use sink::TraceSink;

/// Virtual duration of one scheduler tick, in nanoseconds (1 ms). All
/// trace timestamps are derived from tick counts and modeled latencies,
/// never from the host clock, so seeded runs reproduce bit-identically.
pub const TICK_NS: u64 = 1_000_000;

/// Converts a modeled latency in milliseconds to virtual nanoseconds.
/// Truncating (not rounding) keeps the mapping monotone and exact for
/// the representable range the energy model produces.
pub fn ns_from_ms(ms: f64) -> u64 {
    if ms <= 0.0 {
        0
    } else {
        (ms * 1e6) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_from_ms_is_monotone_and_clamped() {
        assert_eq!(ns_from_ms(-1.0), 0);
        assert_eq!(ns_from_ms(0.0), 0);
        assert_eq!(ns_from_ms(1.0), 1_000_000);
        assert!(ns_from_ms(0.5) < ns_from_ms(0.75));
    }
}
