//! Temporal scene sequences.
//!
//! §5.5.2 of the paper notes that temporal modelling lets the context be
//! estimated across time, enabling sensor clock gating for whole periods.
//! [`SceneSequence`] provides the substrate: a scene evolved with simple
//! constant-velocity kinematics at a fixed frame rate.

use crate::scene::Scene;
use serde::{Deserialize, Serialize};

/// A temporally coherent sequence of scenes at a fixed frame rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSequence {
    frames: Vec<Scene>,
    /// Frame interval, seconds.
    pub dt: f64,
}

impl SceneSequence {
    /// Rolls `initial` forward for `steps` frames of `dt` seconds each.
    ///
    /// Objects move with constant velocity along their heading; objects
    /// leaving the observed region are dropped (as they would leave the
    /// sensors' field of view). Frame ids are derived from the initial
    /// scene id.
    ///
    /// # Panics
    /// Panics if `dt <= 0`.
    pub fn simulate(initial: Scene, steps: usize, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        let mut frames = Vec::with_capacity(steps + 1);
        let mut cur = initial;
        frames.push(cur.clone());
        for k in 0..steps {
            let mut next = cur.clone();
            next.id = frames[0].id * 10_000 + k as u64 + 1;
            for o in &mut next.objects {
                // Relative longitudinal motion includes ego speed.
                o.step(dt);
                o.y -= next.ego_speed * dt;
            }
            next.objects.retain(|o| Scene::in_view(o.x, o.y));
            frames.push(next.clone());
            cur = next;
        }
        SceneSequence { frames, dt }
    }

    /// The frames, oldest first.
    pub fn frames(&self) -> &[Scene] {
        &self.frames
    }

    /// Number of frames (initial + simulated).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total simulated duration in seconds.
    pub fn duration(&self) -> f64 {
        self.dt * (self.frames.len().saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::generator::ScenarioGenerator;

    #[test]
    fn simulate_produces_requested_frames() {
        let mut gen = ScenarioGenerator::new(1);
        let seq = SceneSequence::simulate(gen.scene(Context::City), 5, 0.25);
        assert_eq!(seq.len(), 6);
        assert!((seq.duration() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn objects_recede_with_ego_motion() {
        let mut gen = ScenarioGenerator::new(2);
        let mut scene = gen.scene(Context::Motorway);
        // Put a stationary object directly ahead.
        scene.objects.clear();
        scene.objects.push(crate::object::SceneObject::new(
            crate::object::ObjectClass::Car,
            0.0,
            30.0,
        ));
        scene.ego_speed = 10.0;
        let seq = SceneSequence::simulate(scene, 2, 1.0);
        let y0 = seq.frames()[0].objects[0].y;
        let y1 = seq.frames()[1].objects[0].y;
        assert!((y0 - y1 - 10.0).abs() < 1e-9, "object should approach by ego speed");
    }

    #[test]
    fn out_of_view_objects_dropped() {
        let mut gen = ScenarioGenerator::new(3);
        let mut scene = gen.scene(Context::City);
        scene.objects.clear();
        scene.objects.push(crate::object::SceneObject::new(
            crate::object::ObjectClass::Car,
            0.0,
            2.0,
        ));
        scene.ego_speed = 10.0;
        let seq = SceneSequence::simulate(scene, 3, 1.0);
        assert!(seq.frames().last().unwrap().objects.is_empty());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut gen = ScenarioGenerator::new(4);
        let _ = SceneSequence::simulate(gen.scene(Context::City), 1, 0.0);
    }
}
