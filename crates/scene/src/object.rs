//! Scene objects and the RADIATE class set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight annotated object classes of the RADIATE dataset, as listed in
/// §5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Van.
    Van,
    /// Truck.
    Truck,
    /// Bus.
    Bus,
    /// Motorbike.
    Motorbike,
    /// Bicycle.
    Bicycle,
    /// Single pedestrian.
    Pedestrian,
    /// Group of pedestrians.
    GroupOfPedestrians,
}

impl ObjectClass {
    /// All classes in dataset order; the index of a class in this array is
    /// its integer id used by detector heads.
    pub const ALL: [ObjectClass; 8] = [
        ObjectClass::Car,
        ObjectClass::Van,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Motorbike,
        ObjectClass::Bicycle,
        ObjectClass::Pedestrian,
        ObjectClass::GroupOfPedestrians,
    ];

    /// Number of classes.
    pub const COUNT: usize = 8;

    /// Integer id (index in [`ObjectClass::ALL`]).
    pub fn id(&self) -> usize {
        ObjectClass::ALL.iter().position(|c| c == self).expect("class in ALL")
    }

    /// Class from integer id.
    ///
    /// Returns `None` if `id >= 8`.
    pub fn from_id(id: usize) -> Option<ObjectClass> {
        ObjectClass::ALL.get(id).copied()
    }

    /// Typical footprint (width, length) in metres, used both to rasterize
    /// objects into sensor grids and to derive ground-truth boxes.
    pub fn footprint_m(&self) -> (f64, f64) {
        match self {
            ObjectClass::Car => (1.8, 4.5),
            ObjectClass::Van => (2.0, 5.5),
            ObjectClass::Truck => (2.5, 8.0),
            ObjectClass::Bus => (2.5, 11.0),
            ObjectClass::Motorbike => (0.8, 2.2),
            ObjectClass::Bicycle => (0.6, 1.8),
            ObjectClass::Pedestrian => (0.7, 0.7),
            ObjectClass::GroupOfPedestrians => (2.4, 2.4),
        }
    }

    /// Radar cross-section proxy in `[0, 1]`: metallic vehicles return far
    /// stronger radar echoes than pedestrians.
    pub fn radar_reflectivity(&self) -> f64 {
        match self {
            ObjectClass::Car => 0.9,
            ObjectClass::Van => 0.95,
            ObjectClass::Truck => 1.0,
            ObjectClass::Bus => 1.0,
            ObjectClass::Motorbike => 0.6,
            ObjectClass::Bicycle => 0.35,
            ObjectClass::Pedestrian => 0.25,
            ObjectClass::GroupOfPedestrians => 0.45,
        }
    }

    /// Optical contrast proxy in `[0, 1]` for camera rendering.
    pub fn optical_contrast(&self) -> f64 {
        match self {
            ObjectClass::Car => 0.85,
            ObjectClass::Van => 0.85,
            ObjectClass::Truck => 0.9,
            ObjectClass::Bus => 0.95,
            ObjectClass::Motorbike => 0.7,
            ObjectClass::Bicycle => 0.65,
            ObjectClass::Pedestrian => 0.75,
            ObjectClass::GroupOfPedestrians => 0.85,
        }
    }

    /// Whether the class is a pedestrian-type class.
    pub fn is_pedestrian(&self) -> bool {
        matches!(self, ObjectClass::Pedestrian | ObjectClass::GroupOfPedestrians)
    }

    /// Whether the class is a heavy vehicle.
    pub fn is_heavy(&self) -> bool {
        matches!(self, ObjectClass::Truck | ObjectClass::Bus)
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectClass::Car => "car",
            ObjectClass::Van => "van",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
            ObjectClass::Motorbike => "motorbike",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Pedestrian => "pedestrian",
            ObjectClass::GroupOfPedestrians => "group of pedestrians",
        };
        f.write_str(s)
    }
}

/// An object instance in the ego frame.
///
/// Coordinates: `x` lateral (metres, + right), `y` longitudinal (metres,
/// + forward from the ego vehicle). `heading` is radians from the +y axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Object class.
    pub class: ObjectClass,
    /// Lateral position of the centre, metres.
    pub x: f64,
    /// Longitudinal position of the centre, metres.
    pub y: f64,
    /// Heading, radians from +y.
    pub heading: f64,
    /// Speed along the heading, m/s.
    pub speed: f64,
}

impl SceneObject {
    /// Creates an object of `class` at `(x, y)`.
    pub fn new(class: ObjectClass, x: f64, y: f64) -> Self {
        SceneObject { class, x, y, heading: 0.0, speed: 0.0 }
    }

    /// Axis-aligned bounding half-extents in metres after rotating the
    /// footprint by `heading`.
    pub fn half_extents_m(&self) -> (f64, f64) {
        let (w, l) = self.class.footprint_m();
        let (hw, hl) = (w / 2.0, l / 2.0);
        let (s, c) = self.heading.sin_abs_cos_abs();
        // Rotated rectangle AABB: |c|*w + |s|*l etc.
        (c * hw + s * hl, s * hw + c * hl)
    }

    /// Advances the object `dt` seconds along its heading.
    pub fn step(&mut self, dt: f64) {
        self.x += self.speed * self.heading.sin() * dt;
        self.y += self.speed * self.heading.cos() * dt;
    }
}

trait SinAbsCosAbs {
    fn sin_abs_cos_abs(self) -> (f64, f64);
}

impl SinAbsCosAbs for f64 {
    fn sin_abs_cos_abs(self) -> (f64, f64) {
        (self.sin().abs(), self.cos().abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for (i, c) in ObjectClass::ALL.iter().enumerate() {
            assert_eq!(c.id(), i);
            assert_eq!(ObjectClass::from_id(i), Some(*c));
        }
        assert_eq!(ObjectClass::from_id(8), None);
    }

    #[test]
    fn display_matches_dataset_names() {
        assert_eq!(ObjectClass::GroupOfPedestrians.to_string(), "group of pedestrians");
        assert_eq!(ObjectClass::Car.to_string(), "car");
    }

    #[test]
    fn footprints_ordered_sanely() {
        let car = ObjectClass::Car.footprint_m();
        let bus = ObjectClass::Bus.footprint_m();
        let ped = ObjectClass::Pedestrian.footprint_m();
        assert!(bus.1 > car.1, "bus longer than car");
        assert!(ped.1 < car.0, "pedestrian smaller than a car is wide");
    }

    #[test]
    fn radar_reflectivity_vehicle_vs_pedestrian() {
        assert!(
            ObjectClass::Truck.radar_reflectivity() > ObjectClass::Pedestrian.radar_reflectivity()
        );
    }

    #[test]
    fn half_extents_axis_aligned() {
        let o = SceneObject::new(ObjectClass::Car, 0.0, 10.0);
        let (hx, hy) = o.half_extents_m();
        assert!((hx - 0.9).abs() < 1e-9);
        assert!((hy - 2.25).abs() < 1e-9);
    }

    #[test]
    fn half_extents_rotated_quarter_turn() {
        let mut o = SceneObject::new(ObjectClass::Car, 0.0, 10.0);
        o.heading = std::f64::consts::FRAC_PI_2;
        let (hx, hy) = o.half_extents_m();
        // Quarter turn swaps extents.
        assert!((hx - 2.25).abs() < 1e-9);
        assert!((hy - 0.9).abs() < 1e-9);
    }

    #[test]
    fn step_moves_along_heading() {
        let mut o = SceneObject::new(ObjectClass::Car, 0.0, 0.0);
        o.speed = 10.0;
        o.heading = 0.0; // straight ahead (+y)
        o.step(0.5);
        assert!((o.y - 5.0).abs() < 1e-9);
        assert!(o.x.abs() < 1e-9);
    }

    #[test]
    fn predicate_helpers() {
        assert!(ObjectClass::Pedestrian.is_pedestrian());
        assert!(ObjectClass::Bus.is_heavy());
        assert!(!ObjectClass::Car.is_heavy());
    }
}
