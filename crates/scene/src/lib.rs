//! Synthetic RADIATE-like driving-scene generation.
//!
//! The paper evaluates on the RADIATE dataset (Sheeny et al. 2020): real
//! radar/lidar/stereo recordings across eight driving contexts with eight
//! annotated object classes. That data cannot ship with a reproduction, so
//! this crate generates *parametric* scenes with the same statistical
//! structure:
//!
//! * the same eight [`Context`]s (`city, fog, junction, motorway, night,
//!   rain, rural, snow`) with context-specific object densities, speed
//!   distributions, and weather parameters;
//! * the same eight [`ObjectClass`]es (`car … group of pedestrians`) with
//!   realistic footprints;
//! * ground-truth 2-D bounding boxes projected into the sensor grid frame.
//!
//! What matters for EcoFusion is not photorealism but that *which modality
//! is informative depends on the context* — fog/snow degrade optical
//! sensors, night kills cameras, radar is weather-proof but coarse. Those
//! couplings are applied downstream by `ecofusion-sensors`; this crate
//! produces the latent world state they observe.
//!
//! # Example
//!
//! ```
//! use ecofusion_scene::{Context, ScenarioGenerator};
//! let mut gen = ScenarioGenerator::new(7);
//! let scene = gen.scene(Context::City);
//! assert_eq!(scene.context, Context::City);
//! let boxes = scene.ground_truth_boxes(64);
//! assert_eq!(boxes.len(), scene.objects.len());
//! ```

pub mod context;
pub mod generator;
pub mod object;
pub mod scene;
pub mod sequence;
pub mod split;
pub mod walk;

pub use context::{Context, ContextProfile};
pub use generator::ScenarioGenerator;
pub use object::{ObjectClass, SceneObject};
pub use scene::{GtBox, Scene, WORLD_DEPTH_M, WORLD_HALF_WIDTH_M};
pub use sequence::SceneSequence;
pub use split::split_scenes;
pub use walk::{ContextWalk, WalkSegment};
