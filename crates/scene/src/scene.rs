//! Scene container and ground-truth projection.

use crate::context::Context;
use crate::object::SceneObject;
use serde::{Deserialize, Serialize};

/// Lateral half-width of the observed world region, metres. The sensor
/// frame covers `x ∈ [-WORLD_HALF_WIDTH_M, +WORLD_HALF_WIDTH_M]`.
///
/// Chosen so a car spans several grid cells at the 32–64 px rasters the
/// reproduction trains at (RADIATE's radar frames are 1152² px over a far
/// larger area; the simulator keeps the px-per-object ratio learnable
/// instead of the absolute coverage).
pub const WORLD_HALF_WIDTH_M: f64 = 12.0;

/// Longitudinal depth of the observed world region, metres. The sensor
/// frame covers `y ∈ [0, WORLD_DEPTH_M]` ahead of the ego vehicle.
pub const WORLD_DEPTH_M: f64 = 24.0;

/// Minimum half-extent of a projected ground-truth box, in grid pixels.
/// Physical sensors blur point targets to at least their point-spread /
/// beam width, so a pedestrian never shrinks below a detectable footprint.
pub const MIN_BOX_HALF_PX: f64 = 1.0;

/// A ground-truth axis-aligned box in grid-pixel coordinates plus class id.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtBox {
    /// Class id (index into `ObjectClass::ALL`).
    pub class_id: usize,
    /// Left edge, pixels.
    pub x1: f32,
    /// Top edge (far end, small y = far), pixels.
    pub y1: f32,
    /// Right edge, pixels.
    pub x2: f32,
    /// Bottom edge, pixels.
    pub y2: f32,
}

impl GtBox {
    /// Box area in square pixels.
    pub fn area(&self) -> f32 {
        (self.x2 - self.x1).max(0.0) * (self.y2 - self.y1).max(0.0)
    }
}

/// A single latent world snapshot: the context plus every object in view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Driving context this scene was sampled from.
    pub context: Context,
    /// Objects in the ego frame.
    pub objects: Vec<SceneObject>,
    /// Ego speed, m/s.
    pub ego_speed: f64,
    /// Unique id for bookkeeping (stable across splits).
    pub id: u64,
}

impl Scene {
    /// Creates an empty scene in `context`.
    pub fn empty(context: Context, id: u64) -> Self {
        Scene { context, objects: Vec::new(), ego_speed: context.profile().ego_speed_mps, id }
    }

    /// Converts world metres to grid pixels for a `grid × grid` raster.
    ///
    /// The mapping places far objects at small row indices (image
    /// convention): `px = (x + W/2) / W * grid`, `py = (D − y) / D * grid`.
    pub fn world_to_grid(x: f64, y: f64, grid: usize) -> (f64, f64) {
        let g = grid as f64;
        let px = (x + WORLD_HALF_WIDTH_M) / (2.0 * WORLD_HALF_WIDTH_M) * g;
        let py = (WORLD_DEPTH_M - y) / WORLD_DEPTH_M * g;
        (px, py)
    }

    /// Ground-truth boxes of all objects projected into a `grid × grid`
    /// raster, clamped to the raster bounds. Boxes are never smaller than
    /// `2 × MIN_BOX_HALF_PX` per side (sensor point-spread).
    pub fn ground_truth_boxes(&self, grid: usize) -> Vec<GtBox> {
        let g = grid as f32;
        self.objects
            .iter()
            .map(|o| {
                let (hx, hy) = o.half_extents_m();
                let (px1, py1) = Self::world_to_grid(o.x - hx, o.y + hy, grid);
                let (px2, py2) = Self::world_to_grid(o.x + hx, o.y - hy, grid);
                let (cx, cy) = ((px1 + px2) / 2.0, (py1 + py2) / 2.0);
                let hw = ((px2 - px1) / 2.0).max(MIN_BOX_HALF_PX);
                let hh = ((py2 - py1) / 2.0).max(MIN_BOX_HALF_PX);
                GtBox {
                    class_id: o.class.id(),
                    x1: ((cx - hw) as f32).clamp(0.0, g),
                    y1: ((cy - hh) as f32).clamp(0.0, g),
                    x2: ((cx + hw) as f32).clamp(0.0, g),
                    y2: ((cy + hh) as f32).clamp(0.0, g),
                }
            })
            .collect()
    }

    /// Whether a world-frame point is inside the observed region.
    pub fn in_view(x: f64, y: f64) -> bool {
        x.abs() <= WORLD_HALF_WIDTH_M && (0.0..=WORLD_DEPTH_M).contains(&y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectClass;

    #[test]
    fn world_to_grid_corners() {
        let grid = 64;
        // Near-left corner -> bottom-left pixel region.
        let (px, py) = Scene::world_to_grid(-WORLD_HALF_WIDTH_M, 0.0, grid);
        assert!((px - 0.0).abs() < 1e-9);
        assert!((py - 64.0).abs() < 1e-9);
        // Far-right corner -> top-right.
        let (px, py) = Scene::world_to_grid(WORLD_HALF_WIDTH_M, WORLD_DEPTH_M, grid);
        assert!((px - 64.0).abs() < 1e-9);
        assert!((py - 0.0).abs() < 1e-9);
    }

    #[test]
    fn gt_box_contains_object_center() {
        let mut scene = Scene::empty(Context::City, 0);
        scene.objects.push(SceneObject::new(ObjectClass::Car, 3.0, 20.0));
        let boxes = scene.ground_truth_boxes(64);
        assert_eq!(boxes.len(), 1);
        let b = boxes[0];
        let (cx, cy) = Scene::world_to_grid(3.0, 20.0, 64);
        assert!(b.x1 < cx as f32 && (cx as f32) < b.x2);
        assert!(b.y1 < cy as f32 && (cy as f32) < b.y2);
        assert!(b.area() > 0.0);
    }

    #[test]
    fn gt_boxes_clamped_to_grid() {
        let mut scene = Scene::empty(Context::City, 0);
        // Object at the very edge of view.
        scene.objects.push(SceneObject::new(ObjectClass::Bus, WORLD_HALF_WIDTH_M - 0.1, 1.0));
        let boxes = scene.ground_truth_boxes(64);
        let b = boxes[0];
        assert!(b.x2 <= 64.0 && b.y2 <= 64.0 && b.x1 >= 0.0 && b.y1 >= 0.0);
    }

    #[test]
    fn larger_class_larger_box() {
        let mut scene = Scene::empty(Context::City, 0);
        scene.objects.push(SceneObject::new(ObjectClass::Pedestrian, 0.0, 20.0));
        scene.objects.push(SceneObject::new(ObjectClass::Bus, 10.0, 20.0));
        let boxes = scene.ground_truth_boxes(64);
        assert!(boxes[1].area() > boxes[0].area());
    }

    #[test]
    fn in_view_boundaries() {
        assert!(Scene::in_view(0.0, 0.0));
        assert!(Scene::in_view(-WORLD_HALF_WIDTH_M, WORLD_DEPTH_M));
        assert!(!Scene::in_view(WORLD_HALF_WIDTH_M + 0.1, 10.0));
        assert!(!Scene::in_view(0.0, -0.1));
    }

    #[test]
    fn serde_roundtrip() {
        let mut scene = Scene::empty(Context::Rain, 7);
        scene.objects.push(SceneObject::new(ObjectClass::Van, 1.0, 2.0));
        let json = serde_json::to_string(&scene).unwrap();
        let back: Scene = serde_json::from_str(&json).unwrap();
        assert_eq!(scene, back);
    }
}
