//! Train/test splitting.

use crate::scene::Scene;
use ecofusion_tensor::rng::Rng;

/// Shuffles `scenes` and splits them into `(train, test)` with the given
/// train fraction (the paper uses a 70:30 split).
///
/// # Panics
/// Panics if `train_fraction` is outside `(0, 1)`.
pub fn split_scenes(
    mut scenes: Vec<Scene>,
    train_fraction: f64,
    rng: &mut Rng,
) -> (Vec<Scene>, Vec<Scene>) {
    assert!(train_fraction > 0.0 && train_fraction < 1.0, "train fraction must be in (0, 1)");
    rng.shuffle(&mut scenes);
    let n_train = ((scenes.len() as f64) * train_fraction).round() as usize;
    let n_train = n_train.min(scenes.len());
    let test = scenes.split_off(n_train);
    (scenes, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ScenarioGenerator;

    #[test]
    fn split_sizes_70_30() {
        let mut gen = ScenarioGenerator::new(1);
        let scenes = gen.scenes_mixed(100);
        let mut rng = Rng::new(2);
        let (train, test) = split_scenes(scenes, 0.7, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_partition() {
        let mut gen = ScenarioGenerator::new(3);
        let scenes = gen.scenes_mixed(50);
        let ids: std::collections::HashSet<u64> = scenes.iter().map(|s| s.id).collect();
        let mut rng = Rng::new(4);
        let (train, test) = split_scenes(scenes, 0.6, &mut rng);
        let mut out_ids = std::collections::HashSet::new();
        for s in train.iter().chain(test.iter()) {
            assert!(out_ids.insert(s.id), "duplicate scene in split");
        }
        assert_eq!(ids, out_ids);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let mut gen = ScenarioGenerator::new(5);
        let scenes = gen.scenes_mixed(40);
        let (t1, e1) = split_scenes(scenes.clone(), 0.5, &mut Rng::new(9));
        let (t2, e2) = split_scenes(scenes, 0.5, &mut Rng::new(9));
        assert_eq!(t1, t2);
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_fraction_panics() {
        let _ = split_scenes(Vec::new(), 1.5, &mut Rng::new(0));
    }
}
