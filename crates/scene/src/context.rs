//! Driving contexts and their generative profiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight RADIATE driving contexts evaluated in the paper (Fig. 5 /
/// Table 3 use exactly this set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Context {
    /// Dense urban driving: many slow objects, clear optics.
    City,
    /// Heavy fog: optical sensors severely attenuated.
    Fog,
    /// Road junction: medium density, crossing traffic.
    Junction,
    /// Motorway: sparse fast traffic.
    Motorway,
    /// Night: low illumination, cameras nearly blind.
    Night,
    /// Rain: moderate optical degradation, lidar speckle.
    Rain,
    /// Rural roads: sparse mixed traffic.
    Rural,
    /// Snowfall: strong optical degradation plus ground clutter.
    Snow,
}

impl Context {
    /// All contexts in paper (Fig. 5) order.
    pub const ALL: [Context; 8] = [
        Context::City,
        Context::Fog,
        Context::Junction,
        Context::Motorway,
        Context::Night,
        Context::Rain,
        Context::Rural,
        Context::Snow,
    ];

    /// Short label as used in the paper's figures ("Jct.", "Mwy.", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Context::City => "City",
            Context::Fog => "Fog",
            Context::Junction => "Jct.",
            Context::Motorway => "Mwy.",
            Context::Night => "Night",
            Context::Rain => "Rain",
            Context::Rural => "Rural",
            Context::Snow => "Snow",
        }
    }

    /// Relative frequency of each context in the dataset mix.
    ///
    /// RADIATE is dominated by city/motorway/junction footage with rarer
    /// adverse-weather sequences; the paper's Table 3 "Overall" column is a
    /// frequency-weighted average. These weights approximate the RADIATE
    /// sequence distribution and are normalized by [`Context::mix_weights`].
    pub fn mix_weight(&self) -> f64 {
        match self {
            Context::City => 0.21,
            Context::Fog => 0.06,
            Context::Junction => 0.18,
            Context::Motorway => 0.20,
            Context::Night => 0.08,
            Context::Rain => 0.06,
            Context::Rural => 0.15,
            Context::Snow => 0.06,
        }
    }

    /// Normalized mix weights over [`Context::ALL`] (sums to 1).
    pub fn mix_weights() -> [f64; 8] {
        let mut w = [0.0; 8];
        let total: f64 = Context::ALL.iter().map(|c| c.mix_weight()).sum();
        for (i, c) in Context::ALL.iter().enumerate() {
            w[i] = c.mix_weight() / total;
        }
        w
    }

    /// Per-sensor signal retention under a *worst-case* weather episode in
    /// this context, indexed in canonical sensor order (camera left, camera
    /// right, lidar, radar). `1.0` means the sensor keeps full signal even
    /// when the context's weather peaks; `0.1` means a full-severity
    /// weather fault leaves 10 % of the return.
    ///
    /// This is the physical prior a weather-attenuation *fault* scales
    /// with: optical sensors collapse in fog/snow and at night, lidar
    /// suffers in scattering media, radar is nearly weather-proof (the
    /// asymmetry the paper's adaptive fusion exploits). Clear contexts
    /// still attenuate mildly (spray, glare), so a weather fault is never
    /// a silent no-op.
    pub fn weather_attenuation(&self) -> [f64; 4] {
        match self {
            Context::City | Context::Junction | Context::Rural => [0.85, 0.85, 0.9, 1.0],
            Context::Motorway => [0.8, 0.8, 0.85, 1.0],
            Context::Fog => [0.1, 0.1, 0.25, 0.95],
            Context::Night => [0.15, 0.15, 0.9, 1.0],
            Context::Rain => [0.45, 0.45, 0.55, 0.9],
            Context::Snow => [0.2, 0.2, 0.3, 0.85],
        }
    }

    /// The generative profile for this context.
    pub fn profile(&self) -> ContextProfile {
        match self {
            Context::City => ContextProfile {
                object_rate: 6.0,
                speed_range_mps: (0.0, 12.0),
                ego_speed_mps: 8.0,
                visibility: 1.0,
                illumination: 1.0,
                precipitation: 0.0,
                clutter: 0.05,
                pedestrian_bias: 0.35,
                heavy_vehicle_bias: 0.15,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Fog => ContextProfile {
                object_rate: 3.0,
                speed_range_mps: (0.0, 15.0),
                ego_speed_mps: 9.0,
                visibility: 0.25,
                illumination: 0.9,
                precipitation: 0.1,
                clutter: 0.08,
                pedestrian_bias: 0.10,
                heavy_vehicle_bias: 0.20,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Junction => ContextProfile {
                object_rate: 4.0,
                speed_range_mps: (0.0, 14.0),
                ego_speed_mps: 6.0,
                visibility: 1.0,
                illumination: 1.0,
                precipitation: 0.0,
                clutter: 0.05,
                pedestrian_bias: 0.20,
                heavy_vehicle_bias: 0.15,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Motorway => ContextProfile {
                object_rate: 2.5,
                speed_range_mps: (20.0, 32.0),
                ego_speed_mps: 28.0,
                visibility: 1.0,
                illumination: 1.0,
                precipitation: 0.0,
                clutter: 0.03,
                pedestrian_bias: 0.0,
                heavy_vehicle_bias: 0.35,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Night => ContextProfile {
                object_rate: 3.0,
                speed_range_mps: (0.0, 16.0),
                ego_speed_mps: 10.0,
                visibility: 0.95,
                illumination: 0.15,
                precipitation: 0.0,
                clutter: 0.04,
                pedestrian_bias: 0.10,
                heavy_vehicle_bias: 0.15,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Rain => ContextProfile {
                object_rate: 4.0,
                speed_range_mps: (0.0, 16.0),
                ego_speed_mps: 9.0,
                visibility: 0.7,
                illumination: 0.85,
                precipitation: 0.6,
                clutter: 0.10,
                pedestrian_bias: 0.15,
                heavy_vehicle_bias: 0.15,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Rural => ContextProfile {
                object_rate: 1.5,
                speed_range_mps: (8.0, 22.0),
                ego_speed_mps: 15.0,
                visibility: 1.0,
                illumination: 1.0,
                precipitation: 0.0,
                clutter: 0.06,
                pedestrian_bias: 0.05,
                heavy_vehicle_bias: 0.25,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
            Context::Snow => ContextProfile {
                object_rate: 3.5,
                speed_range_mps: (0.0, 12.0),
                ego_speed_mps: 7.0,
                visibility: 0.45,
                illumination: 0.8,
                precipitation: 0.8,
                clutter: 0.18,
                pedestrian_bias: 0.10,
                heavy_vehicle_bias: 0.15,
                max_objects: ContextProfile::DEFAULT_MAX_OBJECTS,
            },
        }
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Generative parameters for a [`Context`].
///
/// Fields are consumed by [`crate::ScenarioGenerator`] (densities and
/// speeds) and by the sensor models in `ecofusion-sensors` (weather).
///
/// The built-in profiles returned by [`Context::profile`] all cap scenes
/// at [`ContextProfile::DEFAULT_MAX_OBJECTS`] objects; raise
/// [`ContextProfile::max_objects`] on a copied profile (and feed it to
/// [`crate::ScenarioGenerator::scene_with_profile`]) for dense stress
/// scenarios:
///
/// ```
/// use ecofusion_scene::{Context, ContextProfile, ScenarioGenerator};
/// let mut dense = Context::City.profile();
/// dense.object_rate = 30.0;
/// dense.max_objects = 4 * ContextProfile::DEFAULT_MAX_OBJECTS;
/// let mut gen = ScenarioGenerator::new(7);
/// let scene = gen.scene_with_profile(Context::City, &dense);
/// assert!(scene.objects.len() <= dense.max_objects);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextProfile {
    /// Poisson rate for the number of objects per scene.
    pub object_rate: f64,
    /// Uniform speed range for dynamic objects, m/s.
    pub speed_range_mps: (f64, f64),
    /// Typical ego speed, m/s.
    pub ego_speed_mps: f64,
    /// Optical visibility factor in `[0, 1]` (1 = clear air). Attenuates
    /// camera and lidar returns with range.
    pub visibility: f64,
    /// Ambient illumination in `[0, 1]` (1 = daylight). Scales camera
    /// signal strength only.
    pub illumination: f64,
    /// Precipitation intensity in `[0, 1]`; adds lidar speckle and camera
    /// streak noise.
    pub precipitation: f64,
    /// Background clutter probability per cell (radar ghosts, ground
    /// returns).
    pub clutter: f64,
    /// Probability mass shifted toward pedestrian classes.
    pub pedestrian_bias: f64,
    /// Probability mass shifted toward trucks/buses.
    pub heavy_vehicle_bias: f64,
    /// Hard cap on objects per scene. Poisson draws above this are
    /// truncated, so raise it for dense stress scenarios; the default
    /// [`ContextProfile::DEFAULT_MAX_OBJECTS`] keeps seeded fixtures
    /// stable.
    pub max_objects: usize,
}

impl ContextProfile {
    /// Object cap of every built-in profile. Chosen so the densest
    /// context (City, rate 6.0) is essentially never truncated
    /// (`P[Poisson(6) > 12] < 1 %`) while a pathological draw cannot blow
    /// up render time.
    pub const DEFAULT_MAX_OBJECTS: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_eight_distinct() {
        let mut set = std::collections::HashSet::new();
        for c in Context::ALL {
            set.insert(c);
        }
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn mix_weights_normalized() {
        let w = Context::mix_weights();
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(Context::Junction.label(), "Jct.");
        assert_eq!(Context::Motorway.label(), "Mwy.");
        assert_eq!(format!("{}", Context::City), "City");
    }

    #[test]
    fn profiles_bounded() {
        for c in Context::ALL {
            let p = c.profile();
            assert!(p.object_rate > 0.0);
            assert!((0.0..=1.0).contains(&p.visibility));
            assert!((0.0..=1.0).contains(&p.illumination));
            assert!((0.0..=1.0).contains(&p.precipitation));
            assert!((0.0..=1.0).contains(&p.clutter));
            assert!(p.speed_range_mps.0 <= p.speed_range_mps.1);
            assert_eq!(p.max_objects, ContextProfile::DEFAULT_MAX_OBJECTS, "{c:?}");
        }
    }

    #[test]
    fn adverse_weather_degrades_optics() {
        assert!(Context::Fog.profile().visibility < Context::City.profile().visibility);
        assert!(Context::Snow.profile().visibility < Context::Rain.profile().visibility);
        assert!(Context::Night.profile().illumination < 0.3);
    }

    #[test]
    fn motorway_has_no_pedestrians() {
        assert_eq!(Context::Motorway.profile().pedestrian_bias, 0.0);
    }

    #[test]
    fn weather_attenuation_bounded_and_ordered() {
        for c in Context::ALL {
            let a = c.weather_attenuation();
            for (i, r) in a.iter().enumerate() {
                assert!((0.0..=1.0).contains(r), "{c:?} sensor {i}: {r}");
            }
            // Stereo cameras degrade identically; radar is the most
            // weather-robust sensor in every context.
            assert_eq!(a[0], a[1], "{c:?}");
            assert!(a[3] >= a[2] && a[3] >= a[0], "{c:?}");
        }
        // Adverse weather hits optics much harder than clear air does.
        assert!(
            Context::Fog.weather_attenuation()[0] < 0.5 * Context::City.weather_attenuation()[0]
        );
        assert!(Context::Night.weather_attenuation()[2] > Context::Fog.weather_attenuation()[2]);
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Context::Snow).unwrap();
        let back: Context = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Context::Snow);
    }
}
