//! Scripted context walks.
//!
//! The runtime's [`VehicleStream`](../../ecofusion_runtime) normally
//! drifts context at segment boundaries via a seeded random walk over the
//! RADIATE mix. A [`ContextWalk`] replaces that walk with an explicit
//! script: an ordered list of `(context, dwell)` segments. Scripted walks
//! are what make a discovered scenario replayable — the exact context
//! sequence is serialized with the scenario instead of being implicit in
//! an RNG stream — and they can express transitions the drift walk never
//! produces (e.g. rapid Fog↔Night flips, the ambiguous-context inputs
//! HydraFusion-style context-selective fusion is most sensitive to).

use crate::context::Context;
use serde::{Deserialize, Serialize};

/// One segment of a scripted walk: `dwell` consecutive frames in
/// `context`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkSegment {
    /// Context of the segment.
    pub context: Context,
    /// Frames the stream spends in it (must be ≥ 1).
    pub dwell: u32,
}

/// An explicit, serializable context schedule for one stream.
///
/// Streams that outlive the script stay in the final segment's context
/// (repeating its dwell), so a walk of any length drives a run of any
/// horizon deterministically.
///
/// # Example
///
/// ```
/// use ecofusion_scene::{Context, ContextWalk};
/// let w = ContextWalk::from_pairs(&[(Context::City, 4), (Context::Fog, 2)]);
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.context_at(0), Context::City);
/// assert_eq!(w.context_at(5), Context::Fog);
/// assert_eq!(w.context_at(100), Context::Fog, "holds the last context");
/// assert!(w.is_structurally_valid());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextWalk {
    segments: Vec<WalkSegment>,
}

impl ContextWalk {
    /// Creates a walk from explicit segments.
    ///
    /// # Panics
    /// Panics if `segments` is empty or any dwell is zero.
    pub fn new(segments: Vec<WalkSegment>) -> Self {
        let walk = ContextWalk { segments };
        assert!(walk.is_structurally_valid(), "context walk must be non-empty with dwell >= 1");
        walk
    }

    /// Creates a walk from `(context, dwell)` pairs.
    ///
    /// # Panics
    /// Panics if `pairs` is empty or any dwell is zero.
    pub fn from_pairs(pairs: &[(Context, u32)]) -> Self {
        ContextWalk::new(
            pairs.iter().map(|&(context, dwell)| WalkSegment { context, dwell }).collect(),
        )
    }

    /// The segments, in playback order.
    pub fn segments(&self) -> &[WalkSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the walk has no segments (only possible on a value built
    /// by mutation or deserialization; such a walk is invalid).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segment `idx`, clamped to the last segment for indices past the
    /// end (the stream holds the final context forever).
    pub fn segment(&self, idx: usize) -> WalkSegment {
        self.segments[idx.min(self.segments.len() - 1)]
    }

    /// Total scripted frames (before the final segment starts repeating).
    pub fn total_frames(&self) -> u64 {
        self.segments.iter().map(|s| s.dwell as u64).sum()
    }

    /// Context in force at absolute frame index `frame` (the final
    /// segment extends indefinitely).
    pub fn context_at(&self, frame: u64) -> Context {
        let mut remaining = frame;
        for seg in &self.segments {
            if remaining < seg.dwell as u64 {
                return seg.context;
            }
            remaining -= seg.dwell as u64;
        }
        self.segments.last().expect("non-empty walk").context
    }

    /// Structural invariants the stream relies on: at least one segment,
    /// every dwell ≥ 1. The mutation hooks below preserve this by
    /// construction.
    pub fn is_structurally_valid(&self) -> bool {
        !self.segments.is_empty() && self.segments.iter().all(|s| s.dwell >= 1)
    }

    // --- mutation hooks (scenario search) -------------------------------

    /// Sets segment `idx`'s dwell (clamped up to 1). Returns `false` when
    /// the index is out of range.
    pub fn set_dwell(&mut self, idx: usize, dwell: u32) -> bool {
        let Some(seg) = self.segments.get_mut(idx) else {
            return false;
        };
        seg.dwell = dwell.max(1);
        true
    }

    /// Sets segment `idx`'s context. Returns `false` when the index is
    /// out of range.
    pub fn set_context(&mut self, idx: usize, context: Context) -> bool {
        let Some(seg) = self.segments.get_mut(idx) else {
            return false;
        };
        seg.context = context;
        true
    }

    /// Splits segment `idx` into two segments of the same context whose
    /// dwells sum to the original (`at` frames, then the rest). Fails
    /// (`false`) unless `0 < at < dwell`.
    pub fn split_segment(&mut self, idx: usize, at: u32) -> bool {
        let Some(seg) = self.segments.get(idx).copied() else {
            return false;
        };
        if at == 0 || at >= seg.dwell {
            return false;
        }
        self.segments[idx].dwell = at;
        self.segments.insert(idx + 1, WalkSegment { dwell: seg.dwell - at, ..seg });
        true
    }

    /// Inserts `segment` before position `idx` (clamped to the end).
    /// Returns `false` when the segment's dwell is zero.
    pub fn insert_segment(&mut self, idx: usize, segment: WalkSegment) -> bool {
        if segment.dwell == 0 {
            return false;
        }
        let idx = idx.min(self.segments.len());
        self.segments.insert(idx, segment);
        true
    }

    /// Removes segment `idx`. Refuses (`false`) to empty the walk or when
    /// the index is out of range.
    pub fn remove_segment(&mut self, idx: usize) -> bool {
        if self.segments.len() <= 1 || idx >= self.segments.len() {
            return false;
        }
        self.segments.remove(idx);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_at_follows_the_script_and_holds_the_tail() {
        let w =
            ContextWalk::from_pairs(&[(Context::City, 3), (Context::Fog, 2), (Context::Night, 1)]);
        let expect = [
            Context::City,
            Context::City,
            Context::City,
            Context::Fog,
            Context::Fog,
            Context::Night,
            Context::Night,
            Context::Night,
        ];
        for (f, want) in expect.iter().enumerate() {
            assert_eq!(w.context_at(f as u64), *want, "frame {f}");
        }
        assert_eq!(w.total_frames(), 6);
        assert_eq!(w.segment(99).context, Context::Night, "clamped past the end");
    }

    #[test]
    fn mutation_hooks_preserve_validity() {
        let mut w = ContextWalk::from_pairs(&[(Context::City, 6), (Context::Rain, 4)]);
        assert!(w.set_dwell(0, 0), "dwell clamps up instead of failing");
        assert_eq!(w.segments()[0].dwell, 1);
        assert!(w.set_context(1, Context::Snow));
        assert!(w.split_segment(1, 1));
        assert_eq!(w.len(), 3);
        assert_eq!(w.segments()[1].dwell + w.segments()[2].dwell, 4);
        assert!(w.insert_segment(1, WalkSegment { context: Context::Fog, dwell: 2 }));
        assert!(!w.insert_segment(0, WalkSegment { context: Context::Fog, dwell: 0 }));
        assert!(w.remove_segment(0));
        assert!(!w.set_dwell(99, 3));
        assert!(!w.split_segment(0, 0));
        assert!(w.is_structurally_valid());
        while w.len() > 1 {
            assert!(w.remove_segment(w.len() - 1));
        }
        assert!(!w.remove_segment(0), "the last segment is irremovable");
        assert!(w.is_structurally_valid());
    }

    #[test]
    fn serde_roundtrip() {
        let w = ContextWalk::from_pairs(&[(Context::Motorway, 8), (Context::Junction, 3)]);
        let json = serde_json::to_string(&w).unwrap();
        let back: ContextWalk = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_walk_panics() {
        let _ = ContextWalk::new(Vec::new());
    }
}
