//! Context-conditioned scene sampling.

use crate::context::{Context, ContextProfile};
use crate::object::{ObjectClass, SceneObject};
use crate::scene::{Scene, WORLD_DEPTH_M, WORLD_HALF_WIDTH_M};
use ecofusion_tensor::rng::Rng;

/// Samples scenes whose statistics follow a context's
/// [`crate::ContextProfile`].
///
/// Generation is deterministic given the seed: the same generator produces
/// the same scene stream, which keeps every experiment reproducible.
///
/// # Example
///
/// ```
/// use ecofusion_scene::{Context, ScenarioGenerator};
/// let mut g1 = ScenarioGenerator::new(1);
/// let mut g2 = ScenarioGenerator::new(1);
/// assert_eq!(g1.scene(Context::Fog), g2.scene(Context::Fog));
/// ```
#[derive(Debug)]
pub struct ScenarioGenerator {
    rng: Rng,
    next_id: u64,
}

impl ScenarioGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ScenarioGenerator { rng: Rng::new(seed), next_id: 0 }
    }

    /// Samples one scene from `context` with the context's built-in
    /// profile (object count capped at
    /// [`ContextProfile::DEFAULT_MAX_OBJECTS`]).
    pub fn scene(&mut self, context: Context) -> Scene {
        self.scene_with_profile(context, &context.profile())
    }

    /// Samples one scene from `context` under an explicit `profile`,
    /// letting stress scenarios override densities, speeds, and the
    /// [`ContextProfile::max_objects`] cap without touching the built-in
    /// presets. With `context.profile()` this is exactly [`Self::scene`]
    /// (same RNG stream), so seeded fixtures are unaffected.
    pub fn scene_with_profile(&mut self, context: Context, profile: &ContextProfile) -> Scene {
        let mut scene = Scene::empty(context, self.next_id);
        self.next_id += 1;
        scene.ego_speed = profile.ego_speed_mps * self.rng.uniform(0.8, 1.2);
        let count = self.rng.poisson(profile.object_rate).min(profile.max_objects);
        for _ in 0..count {
            if let Some(obj) = self.place_object(profile, &scene) {
                scene.objects.push(obj);
            }
        }
        scene
    }

    /// Samples one scene with the context itself drawn from the RADIATE
    /// mix distribution.
    pub fn scene_mixed(&mut self) -> Scene {
        let w = Context::mix_weights();
        let r = self.rng.uniform(0.0, 1.0);
        let mut acc = 0.0;
        let mut picked = Context::City;
        for (i, c) in Context::ALL.iter().enumerate() {
            acc += w[i];
            if r <= acc {
                picked = *c;
                break;
            }
        }
        self.scene(picked)
    }

    /// Samples `n` scenes from `context`.
    pub fn scenes(&mut self, context: Context, n: usize) -> Vec<Scene> {
        (0..n).map(|_| self.scene(context)).collect()
    }

    /// Samples `n` scenes from the dataset mix.
    pub fn scenes_mixed(&mut self, n: usize) -> Vec<Scene> {
        (0..n).map(|_| self.scene_mixed()).collect()
    }

    /// Picks a class according to the profile's bias parameters.
    fn sample_class(&mut self, p: &ContextProfile) -> ObjectClass {
        let r = self.rng.uniform(0.0, 1.0);
        if r < p.pedestrian_bias {
            if self.rng.chance(0.6) {
                ObjectClass::Pedestrian
            } else {
                ObjectClass::GroupOfPedestrians
            }
        } else if r < p.pedestrian_bias + p.heavy_vehicle_bias {
            if self.rng.chance(0.7) {
                ObjectClass::Truck
            } else {
                ObjectClass::Bus
            }
        } else {
            // Light-vehicle mix.
            let light = [
                ObjectClass::Car,
                ObjectClass::Car,
                ObjectClass::Car,
                ObjectClass::Van,
                ObjectClass::Motorbike,
                ObjectClass::Bicycle,
            ];
            *self.rng.choose(&light).expect("non-empty")
        }
    }

    /// Places an object without excessive overlap with existing objects.
    /// Returns `None` if a free spot is not found in a bounded number of
    /// rejection-sampling attempts.
    fn place_object(&mut self, profile: &ContextProfile, scene: &Scene) -> Option<SceneObject> {
        let class = self.sample_class(profile);
        for _ in 0..24 {
            let (w, l) = class.footprint_m();
            let margin = (w.max(l)) / 2.0 + 0.5;
            let x = self.rng.uniform(-WORLD_HALF_WIDTH_M + margin, WORLD_HALF_WIDTH_M - margin);
            let y = self.rng.uniform(margin.max(3.0), WORLD_DEPTH_M - margin);
            let mut obj = SceneObject::new(class, x, y);
            obj.heading = if self.rng.chance(0.7) {
                // Mostly traffic-aligned with small deviations.
                self.rng.normal(0.0, 0.15)
            } else {
                self.rng.uniform(-std::f64::consts::PI, std::f64::consts::PI)
            };
            obj.speed = if class.is_pedestrian() {
                self.rng.uniform(0.0, 2.0)
            } else {
                self.rng.uniform(profile.speed_range_mps.0, profile.speed_range_mps.1)
            };
            if !self.too_close(&obj, scene) {
                return Some(obj);
            }
        }
        None
    }

    fn too_close(&self, obj: &SceneObject, scene: &Scene) -> bool {
        let (hx_a, hy_a) = obj.half_extents_m();
        scene.objects.iter().any(|o| {
            let (hx_b, hy_b) = o.half_extents_m();
            let dx = (obj.x - o.x).abs();
            let dy = (obj.y - o.y).abs();
            dx < (hx_a + hx_b) * 0.9 && dy < (hy_a + hy_b) * 0.9
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ScenarioGenerator::new(5);
        let mut b = ScenarioGenerator::new(5);
        for c in Context::ALL {
            assert_eq!(a.scene(c), b.scene(c));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ScenarioGenerator::new(1);
        let mut b = ScenarioGenerator::new(2);
        let sa = a.scenes(Context::City, 5);
        let sb = b.scenes(Context::City, 5);
        assert_ne!(sa, sb);
    }

    #[test]
    fn city_denser_than_rural() {
        let mut gen = ScenarioGenerator::new(3);
        let city: usize = gen.scenes(Context::City, 200).iter().map(|s| s.objects.len()).sum();
        let rural: usize = gen.scenes(Context::Rural, 200).iter().map(|s| s.objects.len()).sum();
        assert!(city > rural, "city {city} vs rural {rural}");
    }

    #[test]
    fn objects_inside_world() {
        let mut gen = ScenarioGenerator::new(4);
        for scene in gen.scenes_mixed(100) {
            for o in &scene.objects {
                assert!(Scene::in_view(o.x, o.y), "object out of view: {o:?}");
            }
        }
    }

    #[test]
    fn motorway_has_no_pedestrians() {
        let mut gen = ScenarioGenerator::new(5);
        for scene in gen.scenes(Context::Motorway, 100) {
            assert!(scene.objects.iter().all(|o| !o.class.is_pedestrian()));
        }
    }

    #[test]
    fn city_has_some_pedestrians() {
        let mut gen = ScenarioGenerator::new(6);
        let total_peds: usize = gen
            .scenes(Context::City, 100)
            .iter()
            .flat_map(|s| &s.objects)
            .filter(|o| o.class.is_pedestrian())
            .count();
        assert!(total_peds > 10, "expected pedestrians in city scenes, got {total_peds}");
    }

    #[test]
    fn mixed_sampling_roughly_follows_weights() {
        let mut gen = ScenarioGenerator::new(7);
        let mut counts: HashMap<Context, usize> = HashMap::new();
        for s in gen.scenes_mixed(2000) {
            *counts.entry(s.context).or_default() += 1;
        }
        let city = counts[&Context::City] as f64 / 2000.0;
        assert!((city - 0.21).abs() < 0.05, "city fraction {city}");
        // Every context appears.
        for c in Context::ALL {
            assert!(counts.contains_key(&c), "{c:?} missing from mix");
        }
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut gen = ScenarioGenerator::new(8);
        let scenes = gen.scenes_mixed(10);
        for w in scenes.windows(2) {
            assert!(w[1].id > w[0].id);
        }
    }

    #[test]
    fn default_profile_path_matches_scene() {
        let mut a = ScenarioGenerator::new(11);
        let mut b = ScenarioGenerator::new(11);
        for c in Context::ALL {
            assert_eq!(a.scene(c), b.scene_with_profile(c, &c.profile()));
        }
    }

    #[test]
    fn dense_profile_exceeds_default_cap() {
        let mut dense = Context::City.profile();
        dense.object_rate = 40.0;
        dense.max_objects = 64;
        let mut gen = ScenarioGenerator::new(12);
        let max_seen = (0..20)
            .map(|_| gen.scene_with_profile(Context::City, &dense).objects.len())
            .max()
            .unwrap();
        // Placement rejection can drop a few, but the scene must clear the
        // old hard-coded cap of 12 comfortably.
        assert!(
            max_seen > crate::ContextProfile::DEFAULT_MAX_OBJECTS,
            "dense scenes truncated at {max_seen}"
        );
    }

    #[test]
    fn default_cap_still_truncates() {
        let mut hot = Context::City.profile();
        hot.object_rate = 40.0;
        let mut gen = ScenarioGenerator::new(13);
        for _ in 0..20 {
            let s = gen.scene_with_profile(Context::City, &hot);
            assert!(s.objects.len() <= crate::ContextProfile::DEFAULT_MAX_OBJECTS);
        }
    }

    #[test]
    fn no_heavy_object_overlap() {
        let mut gen = ScenarioGenerator::new(9);
        for scene in gen.scenes(Context::City, 50) {
            for (i, a) in scene.objects.iter().enumerate() {
                for b in scene.objects.iter().skip(i + 1) {
                    let (hx_a, hy_a) = a.half_extents_m();
                    let (hx_b, hy_b) = b.half_extents_m();
                    let dx = (a.x - b.x).abs();
                    let dy = (a.y - b.y).abs();
                    // Centres must not coincide.
                    assert!(
                        dx >= (hx_a + hx_b) * 0.5 || dy >= (hy_a + hy_b) * 0.5,
                        "objects nearly coincide: {a:?} {b:?}"
                    );
                }
            }
        }
    }
}
