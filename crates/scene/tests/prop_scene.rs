//! Property-based tests of scene generation and projection.

use ecofusion_scene::{split_scenes, Context, ScenarioGenerator, Scene};
use ecofusion_tensor::rng::Rng;
use proptest::prelude::*;

fn arb_context() -> impl Strategy<Value = Context> {
    (0usize..8).prop_map(|i| Context::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn objects_always_in_view(seed in 0u64..10_000, ctx in arb_context()) {
        let mut gen = ScenarioGenerator::new(seed);
        let scene = gen.scene(ctx);
        for o in &scene.objects {
            prop_assert!(Scene::in_view(o.x, o.y), "{o:?}");
        }
    }

    #[test]
    fn gt_boxes_inside_raster(seed in 0u64..10_000, ctx in arb_context(), grid in 16usize..96) {
        let mut gen = ScenarioGenerator::new(seed);
        let scene = gen.scene(ctx);
        for b in scene.ground_truth_boxes(grid) {
            prop_assert!(b.x1 >= 0.0 && b.y1 >= 0.0);
            prop_assert!(b.x2 <= grid as f32 && b.y2 <= grid as f32);
            prop_assert!(b.x1 <= b.x2 && b.y1 <= b.y2);
            prop_assert!(b.class_id < 8);
        }
    }

    #[test]
    fn gt_boxes_have_minimum_size_unless_clamped(
        seed in 0u64..10_000,
        ctx in arb_context(),
    ) {
        let grid = 48usize;
        let mut gen = ScenarioGenerator::new(seed);
        let scene = gen.scene(ctx);
        for b in scene.ground_truth_boxes(grid) {
            // Interior boxes respect the point-spread minimum.
            let interior = b.x1 > 0.0 && b.y1 > 0.0 && b.x2 < grid as f32 && b.y2 < grid as f32;
            if interior {
                prop_assert!(b.x2 - b.x1 >= 2.0 * ecofusion_scene::scene::MIN_BOX_HALF_PX as f32 - 1e-4);
            }
        }
    }

    #[test]
    fn split_is_a_partition(seed in 0u64..10_000, n in 4usize..60, frac in 0.1f64..0.9) {
        let mut gen = ScenarioGenerator::new(seed);
        let scenes = gen.scenes_mixed(n);
        let ids: std::collections::BTreeSet<u64> = scenes.iter().map(|s| s.id).collect();
        let (train, test) = split_scenes(scenes, frac, &mut Rng::new(seed ^ 1));
        let out: std::collections::BTreeSet<u64> =
            train.iter().chain(test.iter()).map(|s| s.id).collect();
        prop_assert_eq!(ids, out);
        prop_assert_eq!(train.len() + test.len(), n);
    }

    #[test]
    fn generation_deterministic(seed in 0u64..10_000, ctx in arb_context()) {
        let a = ScenarioGenerator::new(seed).scene(ctx);
        let b = ScenarioGenerator::new(seed).scene(ctx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn world_grid_projection_is_monotone(
        x1 in -12.0f64..12.0,
        x2 in -12.0f64..12.0,
        grid in 16usize..96,
    ) {
        let (px1, _) = Scene::world_to_grid(x1, 0.0, grid);
        let (px2, _) = Scene::world_to_grid(x2, 0.0, grid);
        if x1 < x2 {
            prop_assert!(px1 < px2);
        }
    }
}
