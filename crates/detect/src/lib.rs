//! Object-detection substrate for the EcoFusion reproduction.
//!
//! The paper's branches are Faster R-CNN detectors (ResNet-18 backbone +
//! RPN + ROI head) split after the first convolution block into a
//! per-modality *stem* and a per-branch *body*. This crate provides every
//! building block at a CPU-trainable scale:
//!
//! * [`BBox`] / [`Detection`] — axis-aligned boxes, IoU/GIoU.
//! * [`nms()`](nms::nms) — greedy and soft non-maximum suppression.
//! * [`wbf`] — Weighted Boxes Fusion (Solovyev et al. 2021), the paper's
//!   late-fusion block (§4.4).
//! * [`anchors`] — the cell grid and ground-truth assignment used by the
//!   dense detection head.
//! * [`Stem`] — the first convolution block, one per sensing modality.
//! * [`BranchDetector`] — backbone blocks + RPN-style dense head, with an
//!   optional two-stage ROI refinement ([`RoiHead`]).
//!
//! The dense head plays the role of Faster R-CNN's RPN + classification
//! head in a single stage — the same loss structure (objectness BCE, class
//! cross-entropy, smooth-L1 box regression from Ren et al.) at a scale
//! trainable in seconds on CPU, per the reproduction's substitution policy
//! (see DESIGN.md).

pub mod anchors;
pub mod bbox;
pub mod branch;
pub mod head;
pub mod metrics;
pub mod nms;
pub mod quant;
pub mod roi;
pub mod stem;
pub mod wbf;

pub use anchors::{assign_targets, CellGrid, CellTarget};
pub use bbox::{BBox, Detection};
pub use branch::{BranchConfig, BranchDetector};
pub use head::{DenseHead, DetectionLoss, HeadOutput};
pub use metrics::{fusion_loss, FusionLoss};
pub use nms::{nms, soft_nms};
pub use quant::QuantBranch;
pub use roi::RoiHead;
pub use stem::Stem;
pub use wbf::{weighted_boxes_fusion, WbfParams};
