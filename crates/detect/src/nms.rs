//! Non-maximum suppression.

use crate::bbox::Detection;

/// Greedy per-class NMS: keeps the highest-scoring detection and removes
/// same-class detections with IoU above `iou_thresh`.
///
/// Output is sorted by descending score.
///
/// # Panics
/// Panics if `iou_thresh` is outside `[0, 1]`.
pub fn nms(mut dets: Vec<Detection>, iou_thresh: f32) -> Vec<Detection> {
    assert!((0.0..=1.0).contains(&iou_thresh), "iou_thresh must be in [0, 1]");
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep: Vec<Detection> = Vec::with_capacity(dets.len());
    'outer: for d in dets {
        for k in &keep {
            if k.class_id == d.class_id && k.bbox.iou(&d.bbox) > iou_thresh {
                continue 'outer;
            }
        }
        keep.push(d);
    }
    keep
}

/// Soft-NMS (Bodla et al.): instead of removing overlapping detections,
/// decays their scores by `exp(-iou² / sigma)`; detections falling below
/// `score_thresh` are dropped.
///
/// # Panics
/// Panics if `sigma <= 0`.
pub fn soft_nms(mut dets: Vec<Detection>, sigma: f32, score_thresh: f32) -> Vec<Detection> {
    assert!(sigma > 0.0, "sigma must be positive");
    let mut out: Vec<Detection> = Vec::with_capacity(dets.len());
    while !dets.is_empty() {
        // Select current max.
        let (mi, _) = dets
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.score.partial_cmp(&b.1.score).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty");
        let m = dets.swap_remove(mi);
        out.push(m);
        for d in &mut dets {
            if d.class_id == m.class_id {
                let iou = d.bbox.iou(&m.bbox);
                d.score *= (-iou * iou / sigma).exp();
            }
        }
        dets.retain(|d| d.score >= score_thresh);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn det(x: f32, score: f32, class: usize) -> Detection {
        Detection::new(BBox::new(x, 0.0, x + 4.0, 4.0), class, score)
    }

    #[test]
    fn suppresses_overlapping_same_class() {
        let dets = vec![det(0.0, 0.9, 0), det(0.5, 0.8, 0), det(20.0, 0.7, 0)];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].score, 0.7);
    }

    #[test]
    fn keeps_overlapping_different_class() {
        let dets = vec![det(0.0, 0.9, 0), det(0.5, 0.8, 1)];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn output_sorted_by_score() {
        let dets = vec![det(0.0, 0.2, 0), det(20.0, 0.9, 0), det(40.0, 0.5, 0)];
        let kept = nms(dets, 0.5);
        let scores: Vec<f32> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn empty_input_ok() {
        assert!(nms(Vec::new(), 0.5).is_empty());
        assert!(soft_nms(Vec::new(), 0.5, 0.01).is_empty());
    }

    #[test]
    fn nms_idempotent() {
        let dets = vec![det(0.0, 0.9, 0), det(1.0, 0.8, 0), det(30.0, 0.6, 1)];
        let once = nms(dets, 0.4);
        let twice = nms(once.clone(), 0.4);
        assert_eq!(once, twice);
    }

    #[test]
    fn soft_nms_decays_not_removes() {
        let dets = vec![det(0.0, 0.9, 0), det(0.5, 0.8, 0)];
        let kept = soft_nms(dets, 0.5, 0.01);
        // Both survive but the second is decayed.
        assert_eq!(kept.len(), 2);
        assert!(kept[1].score < 0.8);
    }

    #[test]
    fn soft_nms_drops_below_threshold() {
        let dets = vec![det(0.0, 0.9, 0), det(0.1, 0.2, 0)];
        let kept = soft_nms(dets, 0.1, 0.15);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    #[should_panic(expected = "iou_thresh")]
    fn bad_threshold_panics() {
        let _ = nms(Vec::new(), 1.5);
    }
}
