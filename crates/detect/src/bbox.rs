//! Axis-aligned bounding boxes and detections.

use ecofusion_scene::GtBox;
use serde::{Deserialize, Serialize};

/// An axis-aligned box in grid-pixel coordinates, `(x1, y1)` top-left and
/// `(x2, y2)` bottom-right.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
    /// Right edge.
    pub x2: f32,
    /// Bottom edge.
    pub y2: f32,
}

impl BBox {
    /// Creates a box, normalizing so `x1 <= x2` and `y1 <= y2`.
    pub fn new(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        BBox { x1: x1.min(x2), y1: y1.min(y2), x2: x1.max(x2), y2: y1.max(y2) }
    }

    /// Box area (non-negative).
    pub fn area(&self) -> f32 {
        (self.x2 - self.x1).max(0.0) * (self.y2 - self.y1).max(0.0)
    }

    /// Box centre.
    pub fn center(&self) -> (f32, f32) {
        ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)
    }

    /// Width of the box.
    pub fn width(&self) -> f32 {
        (self.x2 - self.x1).max(0.0)
    }

    /// Height of the box.
    pub fn height(&self) -> f32 {
        (self.y2 - self.y1).max(0.0)
    }

    /// Intersection area with `other`.
    pub fn intersection(&self, other: &BBox) -> f32 {
        let w = (self.x2.min(other.x2) - self.x1.max(other.x1)).max(0.0);
        let h = (self.y2.min(other.y2) - self.y1.max(other.y1)).max(0.0);
        w * h
    }

    /// Intersection-over-union with `other`, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Generalized IoU (Rezatofighi et al.), in `[-1, 1]`.
    pub fn giou(&self, other: &BBox) -> f32 {
        let iou = self.iou(other);
        let cx1 = self.x1.min(other.x1);
        let cy1 = self.y1.min(other.y1);
        let cx2 = self.x2.max(other.x2);
        let cy2 = self.y2.max(other.y2);
        let hull = ((cx2 - cx1) * (cy2 - cy1)).max(1e-9);
        let union = self.area() + other.area() - self.intersection(other);
        iou - (hull - union) / hull
    }

    /// Clamps the box into `[0, size] × [0, size]`.
    pub fn clamped(&self, size: f32) -> BBox {
        BBox {
            x1: self.x1.clamp(0.0, size),
            y1: self.y1.clamp(0.0, size),
            x2: self.x2.clamp(0.0, size),
            y2: self.y2.clamp(0.0, size),
        }
    }
}

impl From<GtBox> for BBox {
    fn from(g: GtBox) -> Self {
        BBox::new(g.x1, g.y1, g.x2, g.y2)
    }
}

/// A scored, classified detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted box.
    pub bbox: BBox,
    /// Predicted class id.
    pub class_id: usize,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
}

impl Detection {
    /// Creates a detection.
    pub fn new(bbox: BBox, class_id: usize, score: f32) -> Self {
        Detection { bbox, class_id, score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = BBox::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(b.x1, 1.0);
        assert_eq!(b.y1, 2.0);
        assert_eq!(b.x2, 5.0);
        assert_eq!(b.y2, 6.0);
    }

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.0, 0.0, 4.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 0.0, 3.0, 2.0);
        // inter = 2, union = 6.
        assert!((a.iou(&b) - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn iou_symmetric() {
        let a = BBox::new(0.0, 0.0, 3.0, 2.0);
        let b = BBox::new(1.0, 1.0, 4.0, 5.0);
        assert_eq!(a.iou(&b), b.iou(&a));
    }

    #[test]
    fn giou_less_than_iou_when_disjoint() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(3.0, 3.0, 4.0, 4.0);
        assert!(a.giou(&b) < 0.0);
        let c = BBox::new(0.0, 0.0, 1.0, 1.0);
        assert!((a.giou(&c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_box_zero_area() {
        let b = BBox::new(1.0, 1.0, 1.0, 5.0);
        assert_eq!(b.area(), 0.0);
        let other = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(b.iou(&other), 0.0);
    }

    #[test]
    fn clamped_within_bounds() {
        let b = BBox::new(-3.0, -1.0, 70.0, 65.0).clamped(64.0);
        assert_eq!(b, BBox::new(0.0, 0.0, 64.0, 64.0));
    }

    #[test]
    fn from_gtbox() {
        let g = GtBox { class_id: 2, x1: 1.0, y1: 2.0, x2: 3.0, y2: 4.0 };
        let b: BBox = g.into();
        assert_eq!(b, BBox::new(1.0, 2.0, 3.0, 4.0));
    }
}
