//! Int8 counterparts of the detection branches.
//!
//! A [`QuantBranch`] is the post-training-quantized image of a trained
//! [`crate::BranchDetector`]: the backbone becomes a
//! [`QuantPipe`] (int8 convolutions, folded batch-norm) and the 1×1 head
//! convolution becomes a [`QuantConv2d`]. The output is the same raw
//! `HeadOutput` map in f32, so the float head's decoder (sigmoid +
//! softmax + NMS) runs unchanged on quantized maps — quantization stops
//! at the compute-bound layers.

use crate::head::HeadOutput;
use ecofusion_tensor::quant::{QuantConv2d, QuantPipe};
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An int8-quantized branch detector: backbone pipe + head convolution.
///
/// Built by [`crate::BranchDetector::quantize`]; immutable and cheap to
/// clone across shard replicas (the weights are `Vec<i8>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantBranch {
    /// Quantized backbone blocks.
    pub backbone: QuantPipe,
    /// Quantized 1×1 detection-head convolution.
    pub head: QuantConv2d,
}

impl QuantBranch {
    /// Runs the quantized backbone + head over stem features of shape
    /// `(N, 8·m, S, S)`, producing the same map layout as the f32 branch.
    ///
    /// # Panics
    /// Panics if the feature channel count does not match the backbone's
    /// first convolution.
    pub fn forward(&self, stem_features: &Tensor) -> HeadOutput {
        let feats = self.backbone.forward(stem_features);
        HeadOutput { map: self.head.forward(&feats) }
    }

    /// Lowers the quantized branch (int8 backbone + int8 1×1 head) into
    /// a fused [`ecofusion_tensor::graph::CompiledPlan`]: each
    /// Conv+Affine+ReLU run becomes one int8 GEMM with the dequant +
    /// folded-BN + ReLU epilogue applied straight to the i32
    /// accumulators, bit-identical to this eager forward.
    ///
    /// # Errors
    /// Propagates the graph compiler's error.
    pub fn compile(
        &self,
        in_shape: &[usize],
    ) -> Result<ecofusion_tensor::graph::CompiledPlan, ecofusion_tensor::graph::CompileError> {
        let mut b = ecofusion_tensor::graph::PlanBuilder::new(in_shape);
        b.push_quant_pipe(&self.backbone)?;
        b.push_quant_conv(&self.head, None, false)?;
        Ok(b.finish())
    }

    /// Structural plan-cache fingerprint of the quantized branch, salted
    /// per unit.
    pub fn plan_fingerprint(&self, salt: u64) -> u64 {
        let base = ecofusion_tensor::graph::fingerprint_quant_pipe(&self.backbone, salt);
        crate::branch::mix_conv_spec(base, self.head.spec)
    }
}

#[cfg(test)]
mod tests {
    use crate::branch::{BranchConfig, BranchDetector};
    use crate::stem::{Stem, STEM_CHANNELS};
    use ecofusion_tensor::layer::Layer;
    use ecofusion_tensor::rng::Rng;
    use ecofusion_tensor::tensor::Tensor;

    #[test]
    fn quantized_branch_map_tracks_f32() {
        let mut rng = Rng::new(21);
        let cfg = BranchConfig { num_sensors: 1, num_classes: 3, raster: 32 };
        let mut branch = BranchDetector::new(cfg, &mut rng);
        // Settle batch-norm running stats so eval mode is nontrivial.
        let warm = Tensor::randn(&[4, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = branch.forward(&warm, true);
        }
        let calib: Vec<Tensor> =
            (0..4).map(|_| Tensor::randn(&[1, STEM_CHANNELS, 16, 16], 1.0, &mut rng)).collect();
        let qbranch = branch.quantize(&calib).expect("branch quantizes");
        let x = Tensor::randn(&[2, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let out_f32 = branch.forward(&x, false);
        let out_q = qbranch.forward(&x);
        assert_eq!(out_q.map.shape(), out_f32.map.shape());
        let max_abs = out_f32.map.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in out_q.map.data().iter().zip(out_f32.map.data()) {
            // Four quantized convolutions deep; stay within ~15% of the
            // map's dynamic range per logit.
            assert!((a - b).abs() <= 0.15 * max_abs + 5e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_stem_tracks_f32() {
        let mut rng = Rng::new(22);
        let mut stem = Stem::new(2, &mut rng);
        let warm = Tensor::randn(&[4, 2, 16, 16], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = stem.forward(&warm, true);
        }
        let calib: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[1, 2, 16, 16], 1.0, &mut rng)).collect();
        let (pipe, _) = stem.quantize(&calib).expect("stem quantizes");
        let x = Tensor::randn(&[1, 2, 16, 16], 1.0, &mut rng);
        let y_f32 = stem.forward(&x, false);
        let y_q = pipe.forward(&x);
        assert_eq!(y_q.shape(), y_f32.shape());
        let max_abs = y_f32.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in y_q.data().iter().zip(y_f32.data()) {
            assert!((a - b).abs() <= 0.08 * max_abs + 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn compiled_branch_is_bit_identical_to_eager() {
        let mut rng = Rng::new(24);
        let cfg = BranchConfig { num_sensors: 1, num_classes: 3, raster: 32 };
        let mut branch = BranchDetector::new(cfg, &mut rng);
        let warm = Tensor::randn(&[4, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = branch.forward(&warm, true);
        }
        let x = Tensor::randn(&[2, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let eager = branch.forward(&x, false);
        let mut plan = branch.compile(x.shape()).expect("branch compiles");
        let compiled = plan.execute(&x);
        assert_eq!(compiled.shape(), eager.map.shape());
        for (a, b) in compiled.data().iter().zip(eager.map.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn compiled_quant_branch_is_bit_identical_to_eager() {
        let mut rng = Rng::new(25);
        let cfg = BranchConfig { num_sensors: 1, num_classes: 3, raster: 32 };
        let mut branch = BranchDetector::new(cfg, &mut rng);
        let warm = Tensor::randn(&[4, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = branch.forward(&warm, true);
        }
        let calib: Vec<Tensor> =
            (0..4).map(|_| Tensor::randn(&[1, STEM_CHANNELS, 16, 16], 1.0, &mut rng)).collect();
        let qbranch = branch.quantize(&calib).expect("branch quantizes");
        let x = Tensor::randn(&[2, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let eager = qbranch.forward(&x);
        let mut plan = qbranch.compile(x.shape()).expect("quant branch compiles");
        let compiled = plan.execute(&x);
        assert_eq!(compiled.shape(), eager.map.shape());
        for (a, b) in compiled.data().iter().zip(eager.map.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        // Same structure, different salt → different cache keys.
        assert_ne!(qbranch.plan_fingerprint(0), qbranch.plan_fingerprint(1));
        assert_ne!(branch.plan_fingerprint(0), qbranch.plan_fingerprint(0));
    }

    #[test]
    fn compiled_stem_is_bit_identical_to_eager() {
        let mut rng = Rng::new(26);
        let mut stem = Stem::new(2, &mut rng);
        let warm = Tensor::randn(&[4, 2, 16, 16], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = stem.forward(&warm, true);
        }
        let x = Tensor::randn(&[3, 2, 16, 16], 1.0, &mut rng);
        let eager = stem.forward(&x, false);
        let mut plan = stem.compile(x.shape()).expect("stem compiles");
        let compiled = plan.execute(&x);
        assert_eq!(compiled.shape(), eager.shape());
        for (a, b) in compiled.data().iter().zip(eager.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_ne!(stem.plan_fingerprint(0), stem.plan_fingerprint(1));
    }

    #[test]
    fn quant_branch_serde_roundtrip() {
        let mut rng = Rng::new(23);
        let cfg = BranchConfig { num_sensors: 1, num_classes: 2, raster: 16 };
        let branch = BranchDetector::new(cfg, &mut rng);
        let calib = vec![Tensor::randn(&[1, STEM_CHANNELS, 8, 8], 1.0, &mut rng)];
        let qbranch = branch.quantize(&calib).expect("branch quantizes");
        let json = serde_json::to_string(&qbranch).expect("serialize");
        let back: super::QuantBranch = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, qbranch);
        let x = Tensor::randn(&[1, STEM_CHANNELS, 8, 8], 1.0, &mut rng);
        assert_eq!(qbranch.forward(&x).map, back.forward(&x).map);
    }
}
