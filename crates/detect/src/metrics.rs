//! Fusion-loss metric.
//!
//! The paper scores every configuration by the "fusion loss" `L_f(φ)`: the
//! combined classification (cross-entropy) and regression (smooth L1) loss
//! of the fused detections against ground truth (§3.3, following Ren et
//! al.). The paper does not spell out how unmatched boxes enter the loss;
//! this implementation documents its choices explicitly:
//!
//! * detections are greedily matched to ground truth by IoU (≥ 0.3);
//! * matched pairs contribute `−ln(score)` if the class is right,
//!   `−ln(1 − score)` if wrong (a cross-entropy on the detection
//!   confidence), plus a smooth-L1 on size-normalized corner offsets;
//! * each missed ground-truth object costs [`MISS_PENALTY`] — missing a
//!   vehicle is the failure mode Fig. 1 calls out ("None misses
//!   vehicles"), so it dominates;
//! * each unmatched (false-positive) detection costs its own confidence.
//!
//! The total is normalized by the number of ground-truth objects.

use crate::bbox::{BBox, Detection};
use ecofusion_scene::GtBox;
use serde::{Deserialize, Serialize};

/// Loss charged per missed ground-truth object.
pub const MISS_PENALTY: f32 = 4.0;

/// IoU at which a detection counts as matching a ground-truth box.
pub const MATCH_IOU: f32 = 0.3;

/// Components of the fusion loss for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FusionLoss {
    /// Confidence cross-entropy over matched detections.
    pub classification: f32,
    /// Smooth-L1 box regression over matched detections.
    pub regression: f32,
    /// Penalty for ground-truth objects with no matching detection.
    pub misses: f32,
    /// Penalty for detections matching no ground-truth object.
    pub false_positives: f32,
}

impl FusionLoss {
    /// Combined scalar loss.
    pub fn total(&self) -> f32 {
        self.classification + self.regression + self.misses + self.false_positives
    }
}

fn smooth_l1_scalar(d: f32) -> f32 {
    if d.abs() < 1.0 {
        0.5 * d * d
    } else {
        d.abs() - 0.5
    }
}

/// Computes the fusion loss of `dets` against `gts`.
///
/// An empty frame with no detections scores zero.
pub fn fusion_loss(dets: &[Detection], gts: &[GtBox]) -> FusionLoss {
    let mut loss = FusionLoss::default();
    let mut gt_matched = vec![false; gts.len()];
    let mut det_matched = vec![false; dets.len()];
    // Greedy matching in descending score order.
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| {
        dets[b].score.partial_cmp(&dets[a].score).unwrap_or(std::cmp::Ordering::Equal)
    });
    for &di in &order {
        let d = &dets[di];
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            if gt_matched[gi] {
                continue;
            }
            let gb: BBox = (*gt).into();
            let iou = d.bbox.iou(&gb);
            if iou >= MATCH_IOU && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        if let Some((gi, _)) = best {
            gt_matched[gi] = true;
            det_matched[di] = true;
            let gt = &gts[gi];
            let gb: BBox = (*gt).into();
            // Confidence cross-entropy: reward confident correct class,
            // punish confident wrong class.
            let p = d.score.clamp(1e-4, 1.0 - 1e-4);
            loss.classification +=
                if d.class_id == gt.class_id { -p.ln() } else { -(1.0 - p).ln() };
            // Size-normalized corner regression.
            let sw = gb.width().max(1.0);
            let sh = gb.height().max(1.0);
            loss.regression += smooth_l1_scalar((d.bbox.x1 - gb.x1) / sw)
                + smooth_l1_scalar((d.bbox.y1 - gb.y1) / sh)
                + smooth_l1_scalar((d.bbox.x2 - gb.x2) / sw)
                + smooth_l1_scalar((d.bbox.y2 - gb.y2) / sh);
        }
    }
    for (gi, matched) in gt_matched.iter().enumerate() {
        let _ = gi;
        if !matched {
            loss.misses += MISS_PENALTY;
        }
    }
    for (di, matched) in det_matched.iter().enumerate() {
        if !matched {
            loss.false_positives += dets[di].score;
        }
    }
    let norm = gts.len().max(1) as f32;
    FusionLoss {
        classification: loss.classification / norm,
        regression: loss.regression / norm,
        misses: loss.misses / norm,
        false_positives: loss.false_positives / norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, x1: f32, y1: f32, x2: f32, y2: f32) -> GtBox {
        GtBox { class_id: class, x1, y1, x2, y2 }
    }

    fn det(class: usize, x1: f32, y1: f32, x2: f32, y2: f32, score: f32) -> Detection {
        Detection::new(BBox::new(x1, y1, x2, y2), class, score)
    }

    #[test]
    fn perfect_detection_low_loss() {
        let gts = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        let dets = [det(0, 10.0, 10.0, 20.0, 20.0, 0.99)];
        let l = fusion_loss(&dets, &gts);
        assert!(l.total() < 0.05, "{l:?}");
        assert_eq!(l.misses, 0.0);
    }

    #[test]
    fn missed_object_costs_miss_penalty() {
        let gts = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        let l = fusion_loss(&[], &gts);
        assert_eq!(l.total(), MISS_PENALTY);
    }

    #[test]
    fn empty_frame_zero_loss() {
        let l = fusion_loss(&[], &[]);
        assert_eq!(l.total(), 0.0);
    }

    #[test]
    fn false_positive_costs_its_confidence() {
        let dets = [det(0, 40.0, 40.0, 50.0, 50.0, 0.7)];
        let l = fusion_loss(&dets, &[]);
        assert!((l.false_positives - 0.7).abs() < 1e-6);
    }

    #[test]
    fn wrong_class_worse_than_right_class() {
        let gts = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        let right = fusion_loss(&[det(0, 10.0, 10.0, 20.0, 20.0, 0.9)], &gts);
        let wrong = fusion_loss(&[det(1, 10.0, 10.0, 20.0, 20.0, 0.9)], &gts);
        assert!(wrong.total() > right.total());
    }

    #[test]
    fn sloppy_box_worse_than_tight_box() {
        let gts = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        let tight = fusion_loss(&[det(0, 10.0, 10.0, 20.0, 20.0, 0.9)], &gts);
        let sloppy = fusion_loss(&[det(0, 7.0, 7.0, 24.0, 24.0, 0.9)], &gts);
        assert!(sloppy.regression > tight.regression);
    }

    #[test]
    fn loss_normalized_by_gt_count() {
        let one = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        let two = [gt(0, 10.0, 10.0, 20.0, 20.0), gt(0, 40.0, 40.0, 50.0, 50.0)];
        let l1 = fusion_loss(&[], &one);
        let l2 = fusion_loss(&[], &two);
        // Average per-object loss is the same.
        assert!((l1.total() - l2.total()).abs() < 1e-6);
    }

    #[test]
    fn greedy_match_prefers_confident_detection() {
        let gts = [gt(0, 10.0, 10.0, 20.0, 20.0)];
        // Two candidates for one GT: the confident one should match, the
        // other becomes a false positive.
        let dets = [det(0, 10.0, 10.0, 20.0, 20.0, 0.95), det(0, 11.0, 11.0, 21.0, 21.0, 0.3)];
        let l = fusion_loss(&dets, &gts);
        assert!((l.false_positives - 0.3).abs() < 1e-6);
        assert!(l.classification < 0.1);
    }
}
