//! Branch detectors (§4.3): backbone blocks + dense head.

use crate::anchors::CellGrid;
use crate::bbox::Detection;
use crate::head::{DenseHead, DetectionLoss, HeadOutput};
use crate::stem::STEM_CHANNELS;
use ecofusion_scene::GtBox;
use ecofusion_tensor::layer::{BatchNorm2d, Conv2d, Layer, ReLU, Sequential};
use ecofusion_tensor::param::Param;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of a [`BranchDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Number of sensors whose stem features this branch consumes
    /// (1 = single-sensor branch, >1 = early-fusion branch).
    pub num_sensors: usize,
    /// Object classes to detect.
    pub num_classes: usize,
    /// Side length of the raw sensor raster (stem input).
    pub raster: usize,
}

impl BranchConfig {
    /// Input channel count: stems concatenate along channels.
    pub fn in_channels(&self) -> usize {
        STEM_CHANNELS * self.num_sensors
    }

    /// Detection cells per side (`raster / 4`: one stem pool + one strided
    /// convolution). Finer than classic stride-8 RPN grids because the
    /// simulator's rasters are small (32–64 px) and city scenes hold up to
    /// a dozen objects — a 4-px cell keeps one object per cell.
    pub fn cells(&self) -> usize {
        self.raster / 4
    }
}

/// One detector branch: the remaining three convolution blocks of the
/// split ResNet plus the dense detection head. A branch consumes the stem
/// features of one sensor (no fusion) or the channel-concatenated stem
/// features of several sensors (early fusion, Eq. 3).
#[derive(Debug)]
pub struct BranchDetector {
    backbone: Sequential,
    head: DenseHead,
    config: BranchConfig,
}

impl BranchDetector {
    /// Creates a branch for the given configuration.
    ///
    /// # Panics
    /// Panics if the raster is not divisible by 8 or `num_sensors == 0`.
    pub fn new(config: BranchConfig, rng: &mut Rng) -> Self {
        assert!(config.num_sensors > 0, "branch needs at least one sensor");
        assert!(
            config.raster.is_multiple_of(8) && config.raster >= 16,
            "raster must be a multiple of 8"
        );
        let c_in = config.in_channels();
        let backbone = Sequential::new(vec![
            // Block 2: downsample to the detection stride.
            Box::new(Conv2d::new(c_in, 16, 3, 2, 1, rng)),
            Box::new(BatchNorm2d::new(16)),
            Box::new(ReLU::new()),
            // Block 3: refine.
            Box::new(Conv2d::new(16, 32, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(32)),
            Box::new(ReLU::new()),
            // Block 4: refine.
            Box::new(Conv2d::new(32, 32, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(32)),
            Box::new(ReLU::new()),
        ]);
        let grid = CellGrid::new(config.raster, config.cells());
        let head = DenseHead::new(32, config.num_classes, grid, rng);
        BranchDetector { backbone, head, config }
    }

    /// The branch configuration.
    pub fn config(&self) -> BranchConfig {
        self.config
    }

    /// Post-training int8 quantization: the backbone becomes a
    /// [`ecofusion_tensor::quant::QuantPipe`] and the head convolution a
    /// quantized 1×1, with activation scales calibrated by propagating
    /// `calib` (stem-feature tensors, NCHW) through the f32 network.
    /// Decoding stays on the f32 head — the quantized branch returns the
    /// same raw map layout.
    pub fn quantize(
        &self,
        calib: &[Tensor],
    ) -> Result<crate::quant::QuantBranch, ecofusion_tensor::QuantizeError> {
        let (backbone, feats) =
            ecofusion_tensor::quant::quantize_sequential(&self.backbone, calib)?;
        let head = self.head.quantize(&feats);
        Ok(crate::quant::QuantBranch { backbone, head })
    }

    /// Lowers the branch (backbone blocks + 1×1 head convolution) into a
    /// fused [`CompiledPlan`] for stem features of `in_shape`: each
    /// Conv+BN+ReLU block becomes one im2col + GEMM with a fused
    /// epilogue, bit-identical to the eager eval forward. The plan's
    /// output is the raw head map (construct a [`HeadOutput`] around it
    /// and decode with [`BranchDetector::decode_sample`]).
    ///
    /// # Errors
    /// Propagates the graph compiler's error.
    pub fn compile(
        &self,
        in_shape: &[usize],
    ) -> Result<ecofusion_tensor::graph::CompiledPlan, ecofusion_tensor::graph::CompileError> {
        let mut b = ecofusion_tensor::graph::PlanBuilder::new(in_shape);
        b.push_sequential(&self.backbone)?;
        b.push_conv(self.head.conv(), None, false)?;
        Ok(b.finish())
    }

    /// Structural plan-cache fingerprint of the branch (backbone + head
    /// geometry), salted per unit.
    pub fn plan_fingerprint(&self, salt: u64) -> u64 {
        let base = ecofusion_tensor::graph::fingerprint_sequential(&self.backbone, salt);
        mix_conv_spec(base, self.head.conv().spec())
    }

    /// Runs the backbone + head over stem features of shape
    /// `(N, 8·m, raster/2, raster/2)`. Every layer is batch-aware, so one
    /// call amortizes the backbone GEMMs across all `N` frames.
    pub fn forward(&mut self, stem_features: &Tensor, train: bool) -> HeadOutput {
        assert_eq!(
            stem_features.shape()[1],
            self.config.in_channels(),
            "stem feature channels do not match branch"
        );
        let feats = self.backbone.forward(stem_features, train);
        self.head.forward(&feats, train)
    }

    /// Decodes detections from a head output (sample 0).
    pub fn decode(&self, out: &HeadOutput, score_thresh: f32, nms_iou: f32) -> Vec<Detection> {
        self.head.decode(out, score_thresh, nms_iou)
    }

    /// Decodes one sample of a batched head output.
    pub fn decode_sample(
        &self,
        out: &HeadOutput,
        sample: usize,
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Detection> {
        self.head.decode_sample(out, sample, score_thresh, nms_iou)
    }

    /// Convenience: forward + decode in eval mode.
    pub fn detect(
        &mut self,
        stem_features: &Tensor,
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Detection> {
        let out = self.forward(stem_features, false);
        self.decode(&out, score_thresh, nms_iou)
    }

    /// Batched forward + decode in eval mode: one backbone/head pass over
    /// `(N, 8·m, S, S)` stem features, returning per-frame detections.
    pub fn detect_batch(
        &mut self,
        stem_features: &Tensor,
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Vec<Detection>> {
        let out = self.forward(stem_features, false);
        (0..stem_features.shape()[0])
            .map(|i| self.decode_sample(&out, i, score_thresh, nms_iou))
            .collect()
    }

    /// Computes the loss of a head output against ground truth.
    pub fn loss(&self, out: &HeadOutput, gts: &[GtBox]) -> (DetectionLoss, Tensor) {
        self.head.loss(out, gts)
    }

    /// One training step: forward, loss, backward. Returns the loss and the
    /// gradient with respect to the stem features (for stem training).
    /// Parameter gradients are accumulated; the caller owns `zero_grad` and
    /// the optimizer step.
    pub fn train_step(&mut self, stem_features: &Tensor, gts: &[GtBox]) -> (DetectionLoss, Tensor) {
        let out = self.forward(stem_features, true);
        let (loss, grad_map) = self.head.loss(&out, gts);
        let grad_feats = self.head.backward(&grad_map);
        let grad_stem = self.backbone.backward(&grad_feats);
        (loss, grad_stem)
    }
}

/// Folds a head convolution's geometry into a backbone fingerprint
/// (FNV-1a step per dimension).
pub(crate) fn mix_conv_spec(base: u64, s: ecofusion_tensor::backend::ConvSpec) -> u64 {
    let mut h = base;
    for d in [s.in_channels, s.out_channels, s.kernel, s.stride, s.padding] {
        h = (h ^ d as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Layer for BranchDetector {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        BranchDetector::forward(self, x, train).map
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.head.backward(grad_out);
        self.backbone.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.backbone.visit_buffers(f);
        self.head.visit_buffers(f);
    }

    fn name(&self) -> &'static str {
        "BranchDetector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BranchConfig {
        BranchConfig { num_sensors: 1, num_classes: 3, raster: 32 }
    }

    #[test]
    fn config_derived_quantities() {
        let c = BranchConfig { num_sensors: 3, num_classes: 8, raster: 64 };
        assert_eq!(c.in_channels(), 24);
        assert_eq!(c.cells(), 16);
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = Rng::new(1);
        let mut b = BranchDetector::new(cfg(), &mut rng);
        // Stem features: raster 32 -> stem out 16x16.
        let x = Tensor::randn(&[1, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let out = b.forward(&x, false);
        assert_eq!(out.map.shape(), &[1, 5 + 3, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "channels do not match")]
    fn wrong_channels_panics() {
        let mut rng = Rng::new(2);
        let mut b = BranchDetector::new(cfg(), &mut rng);
        let x = Tensor::zeros(&[1, 16, 16, 16]);
        let _ = b.forward(&x, false);
    }

    #[test]
    fn train_step_reduces_loss() {
        let mut rng = Rng::new(3);
        let mut b = BranchDetector::new(cfg(), &mut rng);
        let x = Tensor::randn(&[1, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let gts = vec![GtBox { class_id: 1, x1: 8.0, y1: 8.0, x2: 20.0, y2: 20.0 }];
        let mut opt = ecofusion_tensor::optim::Sgd::new(0.05, 0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let (l, _) = b.train_step(&x, &gts);
            ecofusion_tensor::optim::Optimizer::step(&mut opt, &mut b);
            Layer::zero_grad(&mut b);
            if first.is_none() {
                first = Some(l.total());
            }
            last = l.total();
        }
        assert!(last < first.unwrap(), "loss should fall: {first:?} -> {last}");
    }

    #[test]
    fn grad_stem_shape_matches_input() {
        let mut rng = Rng::new(4);
        let mut b = BranchDetector::new(cfg(), &mut rng);
        let x = Tensor::randn(&[1, STEM_CHANNELS, 16, 16], 1.0, &mut rng);
        let (_, grad) = b.train_step(&x, &[]);
        assert_eq!(grad.shape(), x.shape());
    }

    #[test]
    fn early_fusion_branch_takes_stacked_stems() {
        let mut rng = Rng::new(5);
        let c = BranchConfig { num_sensors: 2, num_classes: 3, raster: 32 };
        let mut b = BranchDetector::new(c, &mut rng);
        let x = Tensor::randn(&[1, STEM_CHANNELS * 2, 16, 16], 1.0, &mut rng);
        let out = b.forward(&x, false);
        assert_eq!(out.map.shape(), &[1, 8, 8, 8]);
    }
}
