//! Detection cell grid and ground-truth assignment.

use crate::bbox::BBox;
use ecofusion_scene::GtBox;
use serde::{Deserialize, Serialize};

/// The `S × S` grid of detection cells over a `G × G` pixel raster.
///
/// Each cell owns one implicit anchor centred in the cell with a square
/// base size proportional to the cell stride; the dense head regresses
/// offsets relative to that anchor (the single-anchor analogue of the RPN's
/// anchor boxes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellGrid {
    /// Cells per side.
    pub cells: usize,
    /// Pixels per cell.
    pub stride: f32,
    /// Anchor base size in pixels (width and height before regression).
    pub base: f32,
}

impl CellGrid {
    /// Creates the grid for `cells × cells` detection cells over a raster
    /// of `raster` pixels.
    ///
    /// # Panics
    /// Panics if `cells` is zero or does not divide `raster`.
    pub fn new(raster: usize, cells: usize) -> Self {
        assert!(cells > 0, "cells must be positive");
        assert_eq!(raster % cells, 0, "cells must divide the raster size");
        let stride = (raster / cells) as f32;
        CellGrid { cells, stride, base: stride * 2.0 }
    }

    /// Centre of cell `(row, col)` in pixels.
    pub fn cell_center(&self, row: usize, col: usize) -> (f32, f32) {
        ((col as f32 + 0.5) * self.stride, (row as f32 + 0.5) * self.stride)
    }

    /// The cell containing pixel `(x, y)`, clamped to the grid.
    pub fn cell_of(&self, x: f32, y: f32) -> (usize, usize) {
        let col = ((x / self.stride) as isize).clamp(0, self.cells as isize - 1) as usize;
        let row = ((y / self.stride) as isize).clamp(0, self.cells as isize - 1) as usize;
        (row, col)
    }

    /// Decodes head regression outputs `(tx, ty, tw, th)` at cell
    /// `(row, col)` into a pixel box:
    ///
    /// ```text
    /// cx = cell_cx + tx·stride      w = base·exp(tw)
    /// cy = cell_cy + ty·stride      h = base·exp(th)
    /// ```
    pub fn decode(&self, row: usize, col: usize, t: [f32; 4]) -> BBox {
        let (cx0, cy0) = self.cell_center(row, col);
        let cx = cx0 + t[0] * self.stride;
        let cy = cy0 + t[1] * self.stride;
        // Clamp pre-exp for numerical safety on untrained heads.
        let w = self.base * t[2].clamp(-4.0, 4.0).exp();
        let h = self.base * t[3].clamp(-4.0, 4.0).exp();
        BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// Encodes a ground-truth box into regression targets for its cell
    /// (inverse of [`CellGrid::decode`]).
    pub fn encode(&self, b: &BBox) -> ((usize, usize), [f32; 4]) {
        let (cx, cy) = b.center();
        let (row, col) = self.cell_of(cx, cy);
        let (cx0, cy0) = self.cell_center(row, col);
        let tx = (cx - cx0) / self.stride;
        let ty = (cy - cy0) / self.stride;
        let tw = (b.width().max(1e-3) / self.base).ln();
        let th = (b.height().max(1e-3) / self.base).ln();
        ((row, col), [tx, ty, tw, th])
    }
}

/// Ground-truth assignment for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellTarget {
    /// Target class id.
    pub class_id: usize,
    /// Regression targets `(tx, ty, tw, th)`.
    pub t: [f32; 4],
}

/// Assigns ground-truth boxes to cells: the cell containing a box centre
/// becomes positive. When two boxes land in one cell, the larger box wins
/// (it dominates the cell's receptive field).
///
/// Returns a `cells × cells` row-major vector of optional targets.
pub fn assign_targets(grid: &CellGrid, gts: &[GtBox]) -> Vec<Option<CellTarget>> {
    let mut targets: Vec<Option<(f32, CellTarget)>> = vec![None; grid.cells * grid.cells];
    for gt in gts {
        let b: BBox = (*gt).into();
        if b.area() <= 0.0 {
            continue;
        }
        let ((row, col), t) = grid.encode(&b);
        let idx = row * grid.cells + col;
        let cand = (b.area(), CellTarget { class_id: gt.class_id, t });
        match &targets[idx] {
            Some((area, _)) if *area >= b.area() => {}
            _ => targets[idx] = Some(cand),
        }
    }
    targets.into_iter().map(|o| o.map(|(_, t)| t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = CellGrid::new(64, 8);
        assert_eq!(g.stride, 8.0);
        assert_eq!(g.cell_center(0, 0), (4.0, 4.0));
        assert_eq!(g.cell_center(7, 7), (60.0, 60.0));
        assert_eq!(g.cell_of(0.0, 0.0), (0, 0));
        assert_eq!(g.cell_of(63.9, 63.9), (7, 7));
        // Out-of-range pixels clamp.
        assert_eq!(g.cell_of(-5.0, 100.0), (7, 0));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_dividing_cells_panics() {
        let _ = CellGrid::new(64, 7);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = CellGrid::new(64, 8);
        let b = BBox::new(10.0, 18.0, 26.0, 30.0);
        let ((row, col), t) = g.encode(&b);
        let back = g.decode(row, col, t);
        assert!((back.x1 - b.x1).abs() < 1e-3, "{back:?}");
        assert!((back.y1 - b.y1).abs() < 1e-3);
        assert!((back.x2 - b.x2).abs() < 1e-3);
        assert!((back.y2 - b.y2).abs() < 1e-3);
    }

    #[test]
    fn zero_offsets_decode_to_anchor() {
        let g = CellGrid::new(64, 8);
        let b = g.decode(3, 4, [0.0; 4]);
        let (cx, cy) = b.center();
        assert_eq!((cx, cy), g.cell_center(3, 4));
        assert!((b.width() - g.base).abs() < 1e-5);
    }

    #[test]
    fn assign_puts_gt_in_center_cell() {
        let g = CellGrid::new(64, 8);
        let gt = GtBox { class_id: 3, x1: 16.0, y1: 16.0, x2: 24.0, y2: 24.0 };
        let targets = assign_targets(&g, &[gt]);
        // Box centre (20, 20) -> cell (2, 2).
        let idx = 2 * 8 + 2;
        let t = targets[idx].expect("cell should be positive");
        assert_eq!(t.class_id, 3);
        assert_eq!(targets.iter().filter(|t| t.is_some()).count(), 1);
    }

    #[test]
    fn larger_box_wins_shared_cell() {
        let g = CellGrid::new(64, 8);
        let small = GtBox { class_id: 1, x1: 18.0, y1: 18.0, x2: 22.0, y2: 22.0 };
        let large = GtBox { class_id: 2, x1: 12.0, y1: 12.0, x2: 28.0, y2: 28.0 };
        let targets = assign_targets(&g, &[small, large]);
        let t = targets[2 * 8 + 2].expect("positive");
        assert_eq!(t.class_id, 2);
    }

    #[test]
    fn degenerate_gt_ignored() {
        let g = CellGrid::new(64, 8);
        let degenerate = GtBox { class_id: 0, x1: 5.0, y1: 5.0, x2: 5.0, y2: 9.0 };
        let targets = assign_targets(&g, &[degenerate]);
        assert!(targets.iter().all(|t| t.is_none()));
    }
}
