//! RPN-style dense detection head.

use crate::anchors::{assign_targets, CellGrid};
use crate::bbox::Detection;
use crate::nms::nms;
use ecofusion_scene::GtBox;
use ecofusion_tensor::layer::{Conv2d, Layer};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Loss components of one detection forward pass (objectness BCE + class
/// cross-entropy + smooth-L1 box regression, the Faster R-CNN loss
/// structure from Ren et al. that the paper trains with).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionLoss {
    /// Objectness binary cross-entropy over all cells.
    pub objectness: f32,
    /// Classification cross-entropy over positive cells.
    pub class: f32,
    /// Smooth-L1 box regression over positive cells.
    pub bbox: f32,
}

impl DetectionLoss {
    /// Combined scalar loss: `obj + cls + 2·box`.
    pub fn total(&self) -> f32 {
        self.objectness + self.class + 2.0 * self.bbox
    }

    /// A zero loss (used for reductions).
    pub fn zero() -> Self {
        DetectionLoss { objectness: 0.0, class: 0.0, bbox: 0.0 }
    }
}

/// Raw head output: a `(1, 5 + K, S, S)` map. Channel 0 holds objectness
/// logits, channels `1..=K` class logits, channels `K+1..K+5` box
/// regression parameters.
#[derive(Debug, Clone)]
pub struct HeadOutput {
    /// The raw output map.
    pub map: Tensor,
}

/// Single-stage dense detection head: a 1×1 convolution over the backbone
/// feature map producing per-cell objectness, class scores, and box
/// regression — the RPN and the box head of Faster R-CNN collapsed into one
/// stage (see crate docs for the substitution rationale).
#[derive(Debug)]
pub struct DenseHead {
    conv: Conv2d,
    grid: CellGrid,
    num_classes: usize,
    /// BCE weight applied to positive cells to counter class imbalance.
    pos_weight: f32,
}

impl DenseHead {
    /// Creates a head over `in_channels` feature channels for
    /// `num_classes` classes on the given cell grid.
    pub fn new(in_channels: usize, num_classes: usize, grid: CellGrid, rng: &mut Rng) -> Self {
        let out = 5 + num_classes;
        DenseHead {
            conv: Conv2d::new(in_channels, out, 1, 1, 0, rng),
            grid,
            num_classes,
            pos_weight: 4.0,
        }
    }

    /// The cell grid this head detects on.
    pub fn grid(&self) -> CellGrid {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The 1×1 head convolution (read-only view for the graph compiler).
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// Quantizes the 1×1 head convolution, calibrating the activation
    /// scale as the max-abs over `calib` (backbone output features).
    pub fn quantize(&self, calib: &[Tensor]) -> ecofusion_tensor::quant::QuantConv2d {
        let mut max_abs = 0.0f32;
        for a in calib {
            max_abs = max_abs.max(a.data().iter().fold(0.0f32, |m, v| m.max(v.abs())));
        }
        let scale = if max_abs > 0.0 { max_abs / ecofusion_tensor::quant::QMAX } else { 1.0 };
        ecofusion_tensor::quant::QuantConv2d::from_conv(&self.conv, scale)
    }

    /// Runs the head over backbone features of shape `(1, C, S, S)`.
    ///
    /// # Panics
    /// Panics if the spatial size does not match the cell grid.
    pub fn forward(&mut self, features: &Tensor, train: bool) -> HeadOutput {
        assert_eq!(features.shape()[2], self.grid.cells, "feature map does not match cell grid");
        assert_eq!(features.shape()[3], self.grid.cells, "feature map does not match cell grid");
        HeadOutput { map: self.conv.forward(features, train) }
    }

    /// Backpropagates a gradient w.r.t. the output map, returning the
    /// gradient w.r.t. the input features.
    pub fn backward(&mut self, grad_map: &Tensor) -> Tensor {
        self.conv.backward(grad_map)
    }

    /// Decodes detections above `score_thresh`, applying per-class NMS at
    /// `nms_iou`. Equivalent to [`DenseHead::decode_sample`] on sample 0.
    pub fn decode(&self, out: &HeadOutput, score_thresh: f32, nms_iou: f32) -> Vec<Detection> {
        self.decode_sample(out, 0, score_thresh, nms_iou)
    }

    /// Decodes one sample of a (possibly batched) head output.
    ///
    /// # Panics
    /// Panics if `sample` is outside the output's batch dimension.
    pub fn decode_sample(
        &self,
        out: &HeadOutput,
        sample: usize,
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Detection> {
        assert!(sample < out.map.shape()[0], "decode_sample batch index out of range");
        let s = self.grid.cells;
        let k = self.num_classes;
        let raster = self.grid.stride * s as f32;
        let mut dets = Vec::new();
        for row in 0..s {
            for col in 0..s {
                let obj = sigmoid(out.map.get4(sample, 0, row, col));
                if obj < score_thresh {
                    continue;
                }
                // Class softmax.
                let mut best_c = 0;
                let mut best_l = f32::NEG_INFINITY;
                let mut denom = 0.0;
                let mut max_l = f32::NEG_INFINITY;
                for c in 0..k {
                    max_l = max_l.max(out.map.get4(sample, 1 + c, row, col));
                }
                for c in 0..k {
                    let l = out.map.get4(sample, 1 + c, row, col);
                    denom += (l - max_l).exp();
                    if l > best_l {
                        best_l = l;
                        best_c = c;
                    }
                }
                let class_prob = (best_l - max_l).exp() / denom.max(1e-12);
                let t = [
                    out.map.get4(sample, 1 + k, row, col),
                    out.map.get4(sample, 2 + k, row, col),
                    out.map.get4(sample, 3 + k, row, col),
                    out.map.get4(sample, 4 + k, row, col),
                ];
                let bbox = self.grid.decode(row, col, t).clamped(raster);
                dets.push(Detection::new(bbox, best_c, obj * class_prob));
            }
        }
        nms(dets, nms_iou)
    }

    /// Computes the detection loss of `out` against ground truth and the
    /// gradient w.r.t. the output map.
    pub fn loss(&self, out: &HeadOutput, gts: &[GtBox]) -> (DetectionLoss, Tensor) {
        let s = self.grid.cells;
        let k = self.num_classes;
        let targets = assign_targets(&self.grid, gts);
        let n_cells = (s * s) as f32;
        let mut grad = Tensor::zeros(out.map.shape());
        let mut l_obj = 0.0f64;
        let mut l_cls = 0.0f64;
        let mut l_box = 0.0f64;
        let n_pos = targets.iter().filter(|t| t.is_some()).count().max(1) as f32;
        for row in 0..s {
            for col in 0..s {
                let target = &targets[row * s + col];
                let x = out.map.get4(0, 0, row, col);
                let (t_obj, w) = match target {
                    Some(_) => (1.0f32, self.pos_weight),
                    None => (0.0f32, 1.0),
                };
                // Stable BCE with logits.
                let bce = x.max(0.0) - x * t_obj + (1.0 + (-x.abs()).exp()).ln();
                l_obj += (w * bce / n_cells) as f64;
                grad.set4(0, 0, row, col, w * (sigmoid(x) - t_obj) / n_cells);
                if let Some(t) = target {
                    // Class cross-entropy at this positive cell.
                    let mut max_l = f32::NEG_INFINITY;
                    for c in 0..k {
                        max_l = max_l.max(out.map.get4(0, 1 + c, row, col));
                    }
                    let mut denom = 0.0;
                    for c in 0..k {
                        denom += (out.map.get4(0, 1 + c, row, col) - max_l).exp();
                    }
                    for c in 0..k {
                        let p = (out.map.get4(0, 1 + c, row, col) - max_l).exp() / denom.max(1e-12);
                        let y = if c == t.class_id { 1.0 } else { 0.0 };
                        grad.set4(0, 1 + c, row, col, (p - y) / n_pos);
                        if c == t.class_id {
                            l_cls += (-(p.max(1e-12)).ln() / n_pos) as f64;
                        }
                    }
                    // Smooth-L1 on the four box params; factor 2 from the
                    // combined loss is applied to the gradient here.
                    for (bi, &tt) in t.t.iter().enumerate() {
                        let pred = out.map.get4(0, 1 + k + bi, row, col);
                        let d = pred - tt;
                        let (l, g) = if d.abs() < 1.0 {
                            (0.5 * d * d, d)
                        } else {
                            (d.abs() - 0.5, d.signum())
                        };
                        l_box += (l / (4.0 * n_pos)) as f64;
                        grad.set4(0, 1 + k + bi, row, col, 2.0 * g / (4.0 * n_pos));
                    }
                }
            }
        }
        (DetectionLoss { objectness: l_obj as f32, class: l_cls as f32, bbox: l_box as f32 }, grad)
    }
}

impl Layer for DenseHead {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        DenseHead::forward(self, x, train).map
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        DenseHead::backward(self, grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ecofusion_tensor::param::Param)) {
        self.conv.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.conv.visit_buffers(f);
    }

    fn name(&self) -> &'static str {
        "DenseHead"
    }
}

fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(cells: usize) -> DenseHead {
        let mut rng = Rng::new(1);
        DenseHead::new(16, 3, CellGrid::new(cells * 8, cells), &mut rng)
    }

    fn features(cells: usize) -> Tensor {
        let mut rng = Rng::new(2);
        Tensor::randn(&[1, 16, cells, cells], 1.0, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut h = head(4);
        let out = h.forward(&features(4), false);
        assert_eq!(out.map.shape(), &[1, 5 + 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "cell grid")]
    fn wrong_spatial_size_panics() {
        let mut h = head(4);
        let _ = h.forward(&features(8), false);
    }

    #[test]
    fn decode_empty_when_objectness_low() {
        let h = head(4);
        let mut map = Tensor::zeros(&[1, 8, 4, 4]);
        // Objectness logit very negative everywhere.
        for row in 0..4 {
            for col in 0..4 {
                map.set4(0, 0, row, col, -20.0);
            }
        }
        let dets = h.decode(&HeadOutput { map }, 0.3, 0.5);
        assert!(dets.is_empty());
    }

    #[test]
    fn decode_finds_planted_object() {
        let h = head(4);
        let mut map = Tensor::full(&[1, 8, 4, 4], -10.0);
        // Plant one confident detection at cell (1, 2), class 1.
        map.set4(0, 0, 1, 2, 8.0); // objectness
        map.set4(0, 2, 1, 2, 6.0); // class-1 logit
        for bi in 0..4 {
            map.set4(0, 4 + bi, 1, 2, 0.0);
        }
        let dets = h.decode(&HeadOutput { map }, 0.3, 0.5);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].class_id, 1);
        assert!(dets[0].score > 0.9);
        let (cx, cy) = dets[0].bbox.center();
        assert!((cx - 20.0).abs() < 1e-3 && (cy - 12.0).abs() < 1e-3);
    }

    #[test]
    fn loss_decreases_with_training_signal() {
        // One GT box; verify a few SGD steps on the head reduce loss.
        let mut h = head(4);
        let x = features(4);
        let gts = vec![GtBox { class_id: 2, x1: 8.0, y1: 8.0, x2: 24.0, y2: 24.0 }];
        let mut first = None;
        let mut last = 0.0;
        let mut opt = ecofusion_tensor::optim::Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..30 {
            let out = DenseHead::forward(&mut h, &x, true);
            let (l, grad) = h.loss(&out, &gts);
            Layer::zero_grad(&mut h);
            DenseHead::backward(&mut h, &grad);
            ecofusion_tensor::optim::Optimizer::step(&mut opt, &mut h);
            if first.is_none() {
                first = Some(l.total());
            }
            last = l.total();
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
    }

    #[test]
    fn trained_head_detects_the_target() {
        let mut h = head(4);
        let x = features(4);
        let gts = vec![GtBox { class_id: 0, x1: 8.0, y1: 8.0, x2: 24.0, y2: 24.0 }];
        let mut opt = ecofusion_tensor::optim::Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..200 {
            let out = DenseHead::forward(&mut h, &x, true);
            let (_, grad) = h.loss(&out, &gts);
            Layer::zero_grad(&mut h);
            DenseHead::backward(&mut h, &grad);
            ecofusion_tensor::optim::Optimizer::step(&mut opt, &mut h);
        }
        let out = DenseHead::forward(&mut h, &x, false);
        let dets = h.decode(&out, 0.5, 0.5);
        assert_eq!(dets.len(), 1, "should find exactly the target");
        let gt: crate::bbox::BBox = gts[0].into();
        assert!(dets[0].bbox.iou(&gt) > 0.7, "IoU {}", dets[0].bbox.iou(&gt));
        assert_eq!(dets[0].class_id, 0);
    }

    #[test]
    fn loss_gradient_matches_finite_differences() {
        let h = head(2);
        let mut rng = Rng::new(5);
        let mut map = Tensor::randn(&[1, 8, 2, 2], 0.5, &mut rng);
        let gts = vec![GtBox { class_id: 1, x1: 2.0, y1: 2.0, x2: 10.0, y2: 10.0 }];
        let (_, grad) = h.loss(&HeadOutput { map: map.clone() }, &gts);
        let eps = 1e-3;
        for i in 0..map.len() {
            let orig = map.data()[i];
            map.data_mut()[i] = orig + eps;
            let (lp, _) = h.loss(&HeadOutput { map: map.clone() }, &gts);
            map.data_mut()[i] = orig - eps;
            let (lm, _) = h.loss(&HeadOutput { map: map.clone() }, &gts);
            map.data_mut()[i] = orig;
            // total = obj + cls + 2*box and grad already folds the 2x.
            let num = (lp.total() - lm.total()) / (2.0 * eps);
            let ana = grad.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "grad mismatch at {i}: numeric {num}, analytic {ana}"
            );
        }
    }

    #[test]
    fn empty_gt_only_objectness_loss() {
        let h = head(4);
        let mut rng = Rng::new(6);
        let map = Tensor::randn(&[1, 8, 4, 4], 0.5, &mut rng);
        let (l, _) = h.loss(&HeadOutput { map }, &[]);
        assert_eq!(l.class, 0.0);
        assert_eq!(l.bbox, 0.0);
        assert!(l.objectness > 0.0);
    }
}
