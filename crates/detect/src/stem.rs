//! Per-modality stem models (§4.1).

use ecofusion_tensor::layer::{BatchNorm2d, Conv2d, Layer, MaxPool2d, ReLU, Sequential};
use ecofusion_tensor::param::Param;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Feature channels produced by every stem. Early-fusion branches see
/// `STEM_CHANNELS × m` input channels for `m` fused sensors.
pub const STEM_CHANNELS: usize = 8;

/// The first convolution block of the detector, split off as the
/// per-modality stem exactly as the paper splits ResNet-18 after its first
/// convolution block (§4.3): `Conv3×3 → BatchNorm → ReLU → MaxPool2`.
///
/// One stem per sensor runs on *every* frame (the gate needs all stem
/// features to identify the context), which is why the energy model charges
/// all four stems to every adaptive configuration.
///
/// Every layer in the stem is batch-aware: `forward` accepts `(N, C, g,
/// g)` and processes all `N` frames in one convolution lowering, which is
/// what `EcoFusionModel::infer_batch` uses to amortize stem compute across
/// frames (in eval mode, batched output equals the stacked per-frame
/// outputs exactly).
#[derive(Debug)]
pub struct Stem {
    net: Sequential,
    in_channels: usize,
}

impl Stem {
    /// Creates a stem for a sensor with `in_channels` input channels.
    pub fn new(in_channels: usize, rng: &mut Rng) -> Self {
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(in_channels, STEM_CHANNELS, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(STEM_CHANNELS)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
        ]);
        Stem { net, in_channels }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output spatial size for a square input of side `g`.
    pub fn out_size(g: usize) -> usize {
        g / 2
    }

    /// Post-training int8 quantization of the stem: per-channel symmetric
    /// weights, activation scales calibrated over `calib` (raw sensor
    /// rasters, NCHW). Returns the final f32 activations of each
    /// calibration input alongside the pipe so downstream branches can
    /// calibrate on stem outputs.
    pub fn quantize(
        &self,
        calib: &[Tensor],
    ) -> Result<(ecofusion_tensor::quant::QuantPipe, Vec<Tensor>), ecofusion_tensor::QuantizeError>
    {
        ecofusion_tensor::quant::quantize_sequential(&self.net, calib)
    }

    /// Lowers the stem into a fused [`CompiledPlan`] for inputs of
    /// `in_shape` (batch included): the Conv+BN+ReLU block becomes one
    /// im2col + GEMM with a fused epilogue, bit-identical to the eager
    /// eval forward.
    ///
    /// # Errors
    /// Propagates the graph compiler's error (never fires for the stem's
    /// fixed architecture unless the shape does not feed it).
    pub fn compile(
        &self,
        in_shape: &[usize],
    ) -> Result<ecofusion_tensor::graph::CompiledPlan, ecofusion_tensor::graph::CompileError> {
        ecofusion_tensor::graph::compile_sequential(&self.net, in_shape)
    }

    /// Structural plan-cache fingerprint of the stem, salted per unit.
    pub fn plan_fingerprint(&self, salt: u64) -> u64 {
        ecofusion_tensor::graph::fingerprint_sequential(&self.net, salt)
    }
}

impl Layer for Stem {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward(x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.net.visit_buffers(f);
    }

    fn name(&self) -> &'static str {
        "Stem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_resolution_and_sets_channels() {
        let mut rng = Rng::new(1);
        let mut stem = Stem::new(1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 64, 64]);
        let y = stem.forward(&x, false);
        assert_eq!(y.shape(), &[1, STEM_CHANNELS, 32, 32]);
        assert_eq!(Stem::out_size(64), 32);
    }

    #[test]
    fn trainable_params_exist() {
        let mut rng = Rng::new(2);
        let mut stem = Stem::new(1, &mut rng);
        assert!(stem.param_count() > 0);
        assert_eq!(stem.in_channels(), 1);
    }

    #[test]
    fn backward_shape_matches_input() {
        let mut rng = Rng::new(3);
        let mut stem = Stem::new(1, &mut rng);
        let x = Tensor::randn(&[1, 1, 16, 16], 1.0, &mut rng);
        let y = stem.forward(&x, true);
        let dx = stem.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn batched_eval_forward_matches_per_sample() {
        let mut rng = Rng::new(4);
        let mut stem = Stem::new(1, &mut rng);
        let batch = Tensor::randn(&[3, 1, 16, 16], 1.0, &mut rng);
        let batched = stem.forward(&batch, false);
        for i in 0..3 {
            let single = stem.forward(&batch.select_batch(i), false);
            assert_eq!(batched.select_batch(i), single, "sample {i}");
        }
    }
}
