//! Weighted Boxes Fusion — the paper's late-fusion block (§4.4).
//!
//! Implements the algorithm of Solovyev et al., *"Weighted boxes fusion:
//! Ensembling boxes from different object detection models"* (Image and
//! Vision Computing 2021): detections from all branches are clustered by
//! class and IoU; each cluster is replaced by a confidence-weighted average
//! box whose score reflects both the member scores and how many of the
//! contributing models agreed.

use crate::bbox::{BBox, Detection};
use serde::{Deserialize, Serialize};

/// Parameters for [`weighted_boxes_fusion`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WbfParams {
    /// IoU above which two same-class boxes are merged into one cluster.
    pub iou_thresh: f32,
    /// Detections below this score are discarded before fusion.
    pub skip_box_thresh: f32,
    /// Fused detections below this score are discarded after fusion.
    pub min_score: f32,
}

impl Default for WbfParams {
    fn default() -> Self {
        WbfParams { iou_thresh: 0.55, skip_box_thresh: 0.05, min_score: 0.05 }
    }
}

#[derive(Debug)]
struct Cluster {
    class_id: usize,
    members: Vec<Detection>,
    fused: Detection,
}

impl Cluster {
    fn refresh(&mut self) {
        let total: f32 = self.members.iter().map(|d| d.score).sum();
        let mut x1 = 0.0;
        let mut y1 = 0.0;
        let mut x2 = 0.0;
        let mut y2 = 0.0;
        for d in &self.members {
            let w = d.score / total.max(1e-9);
            x1 += w * d.bbox.x1;
            y1 += w * d.bbox.y1;
            x2 += w * d.bbox.x2;
            y2 += w * d.bbox.y2;
        }
        let score = total / self.members.len() as f32;
        self.fused = Detection::new(BBox::new(x1, y1, x2, y2), self.class_id, score);
    }
}

/// Fuses detections produced by `num_models` ensemble members.
///
/// Returns fused detections sorted by descending score. Cluster scores are
/// rescaled by `min(n_members, num_models) / num_models` so boxes confirmed
/// by fewer models lose confidence — the mechanism that lets late fusion
/// suppress single-sensor hallucinations.
///
/// # Panics
/// Panics if `num_models` is zero.
pub fn weighted_boxes_fusion(
    branch_outputs: &[Vec<Detection>],
    params: &WbfParams,
    num_models: usize,
) -> Vec<Detection> {
    assert!(num_models > 0, "num_models must be positive");
    let mut clusters: Vec<Cluster> = Vec::new();
    // Feed detections in descending score order for stable clustering.
    let mut all: Vec<Detection> = branch_outputs
        .iter()
        .flatten()
        .filter(|d| d.score >= params.skip_box_thresh)
        .copied()
        .collect();
    all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    for det in all {
        let mut best: Option<(usize, f32)> = None;
        for (ci, c) in clusters.iter().enumerate() {
            if c.class_id != det.class_id {
                continue;
            }
            let iou = c.fused.bbox.iou(&det.bbox);
            if iou > params.iou_thresh && best.is_none_or(|(_, b)| iou > b) {
                best = Some((ci, iou));
            }
        }
        match best {
            Some((ci, _)) => {
                clusters[ci].members.push(det);
                clusters[ci].refresh();
            }
            None => {
                clusters.push(Cluster { class_id: det.class_id, members: vec![det], fused: det });
            }
        }
    }
    let mut fused: Vec<Detection> = clusters
        .into_iter()
        .map(|c| {
            let mut d = c.fused;
            let n = c.members.len().min(num_models) as f32;
            d.score *= n / num_models as f32;
            d
        })
        .filter(|d| d.score >= params.min_score)
        .collect();
    fused.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x1: f32, y1: f32, x2: f32, y2: f32, class: usize, score: f32) -> Detection {
        Detection::new(BBox::new(x1, y1, x2, y2), class, score)
    }

    #[test]
    fn two_agreeing_models_merge() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.8)];
        let b = vec![det(0.2, 0.1, 4.1, 4.2, 0, 0.9)];
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        assert_eq!(fused.len(), 1);
        // Both models agreed: score is the member average, no down-scale.
        assert!((fused[0].score - 0.85).abs() < 1e-5);
        // Fused box lies between the inputs.
        assert!(fused[0].bbox.x1 > 0.0 && fused[0].bbox.x1 < 0.2);
    }

    #[test]
    fn lone_detection_downweighted() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.8)];
        let b: Vec<Detection> = Vec::new();
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        assert_eq!(fused.len(), 1);
        // Only 1 of 2 models saw it: score halves.
        assert!((fused[0].score - 0.4).abs() < 1e-5);
    }

    #[test]
    fn different_classes_never_merge() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.8)];
        let b = vec![det(0.0, 0.0, 4.0, 4.0, 1, 0.8)];
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn fused_box_within_convex_hull() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.5)];
        let b = vec![det(1.0, 1.0, 5.0, 5.0, 0, 0.5)];
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        let f = fused[0].bbox;
        assert!(f.x1 >= 0.0 && f.y1 >= 0.0 && f.x2 <= 5.0 && f.y2 <= 5.0);
    }

    #[test]
    fn skip_thresh_filters_inputs() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.01)];
        let fused = weighted_boxes_fusion(&[a], &WbfParams::default(), 1);
        assert!(fused.is_empty());
    }

    #[test]
    fn higher_score_dominates_fused_position() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.9)];
        let b = vec![det(2.0, 0.0, 6.0, 4.0, 0, 0.1)];
        let p = WbfParams { iou_thresh: 0.2, ..Default::default() };
        let fused = weighted_boxes_fusion(&[a, b], &p, 2);
        assert_eq!(fused.len(), 1);
        // Weighted centre x should sit much closer to the 0.9-score box.
        let (cx, _) = fused[0].bbox.center();
        assert!(cx < 2.5, "cx {cx}");
    }

    #[test]
    fn output_sorted_by_score() {
        let a = vec![det(0.0, 0.0, 4.0, 4.0, 0, 0.3), det(20.0, 20.0, 24.0, 24.0, 1, 0.9)];
        let fused = weighted_boxes_fusion(&[a], &WbfParams::default(), 1);
        assert!(fused[0].score >= fused[1].score);
    }

    #[test]
    fn empty_inputs_ok() {
        let fused = weighted_boxes_fusion(&[], &WbfParams::default(), 3);
        assert!(fused.is_empty());
    }

    #[test]
    #[should_panic(expected = "num_models")]
    fn zero_models_panics() {
        let _ = weighted_boxes_fusion(&[], &WbfParams::default(), 0);
    }
}
