//! Optional second-stage ROI refinement head.
//!
//! The paper's branches are two-stage Faster R-CNN detectors. The dense
//! head in [`crate::head`] plays the role of the RPN + classification head
//! in one stage; this module restores the second stage as an optional
//! refinement: proposals from the dense head are re-classified (with an
//! explicit background class) and their boxes re-regressed from pooled
//! backbone features. The `ablations` bench compares single-stage vs
//! two-stage accuracy.

use crate::anchors::CellGrid;
use crate::bbox::{BBox, Detection};
use ecofusion_scene::GtBox;
use ecofusion_tensor::layer::{Layer, Linear, ReLU};
use ecofusion_tensor::loss;
use ecofusion_tensor::param::Param;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Pooling window side (cells) around a proposal centre.
const POOL: usize = 3;

/// Second-stage refinement head: `roi-pool → fc → relu → {cls, reg}`.
#[derive(Debug)]
pub struct RoiHead {
    fc1: Linear,
    relu: ReLU,
    fc_cls: Linear,
    fc_reg: Linear,
    feature_channels: usize,
    num_classes: usize,
}

impl RoiHead {
    /// Creates a refinement head over `feature_channels`-deep backbone maps
    /// for `num_classes` object classes (a background class is added
    /// internally).
    pub fn new(feature_channels: usize, num_classes: usize, rng: &mut Rng) -> Self {
        let in_dim = feature_channels * POOL * POOL;
        let hidden = 64;
        RoiHead {
            fc1: Linear::new(in_dim, hidden, rng),
            relu: ReLU::new(),
            fc_cls: Linear::new(hidden, num_classes + 1, rng),
            fc_reg: Linear::new(hidden, 4, rng),
            feature_channels,
            num_classes,
        }
    }

    /// Number of object classes (excluding background).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Pools a `POOL × POOL` window of `features` centred on the
    /// proposal's cell into a flat row vector.
    fn pool(&self, features: &Tensor, grid: &CellGrid, det: &Detection) -> Vec<f32> {
        let s = grid.cells;
        let c = self.feature_channels;
        let (cx, cy) = det.bbox.center();
        let (row, col) = grid.cell_of(cx, cy);
        let half = POOL / 2;
        let mut out = Vec::with_capacity(c * POOL * POOL);
        for ci in 0..c {
            for dr in 0..POOL {
                for dc in 0..POOL {
                    let r = (row + dr).saturating_sub(half).min(s - 1);
                    let cc = (col + dc).saturating_sub(half).min(s - 1);
                    out.push(features.get4(0, ci, r, cc));
                }
            }
        }
        out
    }

    fn pooled_batch(&self, features: &Tensor, grid: &CellGrid, props: &[Detection]) -> Tensor {
        let dim = self.feature_channels * POOL * POOL;
        let mut data = Vec::with_capacity(props.len() * dim);
        for p in props {
            data.extend(self.pool(features, grid, p));
        }
        Tensor::from_vec(&[props.len(), dim], data)
    }

    /// Refines `proposals` using backbone `features`. Proposals
    /// re-classified as background are dropped; surviving boxes get refined
    /// coordinates and scores multiplied by the second-stage class
    /// probability.
    pub fn refine(
        &mut self,
        features: &Tensor,
        grid: &CellGrid,
        proposals: &[Detection],
    ) -> Vec<Detection> {
        if proposals.is_empty() {
            return Vec::new();
        }
        let x = self.pooled_batch(features, grid, proposals);
        let h = self.relu.forward(&self.fc1.forward(&x, false), false);
        let cls = self.fc_cls.forward(&h, false).softmax_rows();
        let reg = self.fc_reg.forward(&h, false);
        let k = self.num_classes;
        let raster = grid.stride * grid.cells as f32;
        let mut out = Vec::new();
        for (i, p) in proposals.iter().enumerate() {
            let mut best_c = 0;
            let mut best_p = f32::NEG_INFINITY;
            for c in 0..=k {
                let pr = cls.get2(i, c);
                if pr > best_p {
                    best_p = pr;
                    best_c = c;
                }
            }
            if best_c == k {
                continue; // background
            }
            let (cx, cy) = p.bbox.center();
            let (w, h_box) = (p.bbox.width().max(1e-3), p.bbox.height().max(1e-3));
            let dx = reg.get2(i, 0);
            let dy = reg.get2(i, 1);
            let dw = reg.get2(i, 2).clamp(-2.0, 2.0);
            let dh = reg.get2(i, 3).clamp(-2.0, 2.0);
            let ncx = cx + dx * w;
            let ncy = cy + dy * h_box;
            let nw = w * dw.exp();
            let nh = h_box * dh.exp();
            let bbox = BBox::new(ncx - nw / 2.0, ncy - nh / 2.0, ncx + nw / 2.0, ncy + nh / 2.0)
                .clamped(raster);
            out.push(Detection::new(bbox, best_c, p.score * best_p));
        }
        out
    }

    /// One training step against ground truth. Proposals with IoU ≥ 0.5 to
    /// a GT box are positives (class + regression targets); proposals with
    /// IoU ≤ 0.3 are background; the rest are ignored. Returns the summed
    /// loss; parameter gradients accumulate for the caller's optimizer.
    pub fn train_step(
        &mut self,
        features: &Tensor,
        grid: &CellGrid,
        proposals: &[Detection],
        gts: &[GtBox],
    ) -> f32 {
        if proposals.is_empty() {
            return 0.0;
        }
        let k = self.num_classes;
        // Build labels.
        let mut labels = Vec::new();
        let mut reg_targets = Vec::new();
        let mut keep = Vec::new();
        for (i, p) in proposals.iter().enumerate() {
            let mut best_iou = 0.0;
            let mut best_gt: Option<&GtBox> = None;
            for gt in gts {
                let b: BBox = (*gt).into();
                let iou = p.bbox.iou(&b);
                if iou > best_iou {
                    best_iou = iou;
                    best_gt = Some(gt);
                }
            }
            if best_iou >= 0.5 {
                let gt = best_gt.expect("gt when iou > 0");
                let gb: BBox = (*gt).into();
                let (cx, cy) = p.bbox.center();
                let (gcx, gcy) = gb.center();
                let (w, h) = (p.bbox.width().max(1e-3), p.bbox.height().max(1e-3));
                labels.push(gt.class_id);
                reg_targets.push([
                    (gcx - cx) / w,
                    (gcy - cy) / h,
                    (gb.width().max(1e-3) / w).ln(),
                    (gb.height().max(1e-3) / h).ln(),
                ]);
                keep.push(i);
            } else if best_iou <= 0.3 {
                labels.push(k); // background
                reg_targets.push([0.0; 4]);
                keep.push(i);
            }
        }
        if keep.is_empty() {
            return 0.0;
        }
        let kept: Vec<Detection> = keep.iter().map(|&i| proposals[i]).collect();
        let x = self.pooled_batch(features, grid, &kept);
        let h1 = self.fc1.forward(&x, true);
        let h = self.relu.forward(&h1, true);
        let cls_logits = self.fc_cls.forward(&h, true);
        let reg = self.fc_reg.forward(&h, true);
        let (cls_loss, cls_grad) = loss::softmax_cross_entropy(&cls_logits, &labels);
        // Regression only on positives.
        let mut reg_grad = Tensor::zeros(reg.shape());
        let mut reg_loss = 0.0f32;
        let n_pos = labels.iter().filter(|&&l| l < k).count().max(1) as f32;
        for (row, label) in labels.iter().enumerate() {
            if *label >= k {
                continue;
            }
            for (j, target) in reg_targets[row].iter().enumerate() {
                let d = reg.get2(row, j) - target;
                let (l, g) =
                    if d.abs() < 1.0 { (0.5 * d * d, d) } else { (d.abs() - 0.5, d.signum()) };
                reg_loss += l / (4.0 * n_pos);
                reg_grad.set2(row, j, g / (4.0 * n_pos));
            }
        }
        let g_h = self.fc_cls.backward(&cls_grad).add(&self.fc_reg.backward(&reg_grad));
        let g_h1 = self.relu.backward(&g_h);
        let _ = self.fc1.backward(&g_h1);
        cls_loss + reg_loss
    }
}

impl Layer for RoiHead {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Raw trunk forward on pre-pooled rows (for optimizer/serialization
        // symmetry; inference goes through `refine`).
        let h = self.relu.forward(&self.fc1.forward(x, train), train);
        self.fc_cls.forward(&h, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.fc_cls.backward(grad_out);
        let g = self.relu.backward(&g);
        self.fc1.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc_cls.visit_params(f);
        self.fc_reg.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "RoiHead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::optim::{Optimizer, Sgd};

    fn grid() -> CellGrid {
        CellGrid::new(32, 4)
    }

    fn features(rng: &mut Rng) -> Tensor {
        Tensor::randn(&[1, 32, 4, 4], 1.0, rng)
    }

    #[test]
    fn refine_empty_proposals() {
        let mut rng = Rng::new(1);
        let mut roi = RoiHead::new(32, 3, &mut rng);
        let f = features(&mut rng);
        assert!(roi.refine(&f, &grid(), &[]).is_empty());
    }

    #[test]
    fn refine_preserves_or_drops() {
        let mut rng = Rng::new(2);
        let mut roi = RoiHead::new(32, 3, &mut rng);
        let f = features(&mut rng);
        let props = vec![
            Detection::new(BBox::new(4.0, 4.0, 12.0, 12.0), 0, 0.9),
            Detection::new(BBox::new(20.0, 20.0, 28.0, 28.0), 1, 0.8),
        ];
        let refined = roi.refine(&f, &grid(), &props);
        assert!(refined.len() <= props.len());
        for d in &refined {
            assert!(d.score <= 0.9);
            assert!(d.class_id < 3);
            assert!(d.bbox.x2 <= 32.0 && d.bbox.y2 <= 32.0);
        }
    }

    #[test]
    fn training_learns_background_rejection() {
        let mut rng = Rng::new(3);
        let mut roi = RoiHead::new(32, 3, &mut rng);
        let f = features(&mut rng);
        // One true object; one far-off false proposal.
        let gts = vec![GtBox { class_id: 2, x1: 4.0, y1: 4.0, x2: 12.0, y2: 12.0 }];
        let props = vec![
            Detection::new(BBox::new(4.0, 4.0, 12.0, 12.0), 0, 0.9),
            Detection::new(BBox::new(22.0, 22.0, 30.0, 30.0), 0, 0.9),
        ];
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..80 {
            roi.zero_grad();
            let l = roi.train_step(&f, &grid(), &props, &gts);
            opt.step(&mut roi);
            if first.is_none() {
                first = Some(l);
            }
            last = l;
        }
        assert!(last < first.unwrap() * 0.6, "roi loss {first:?} -> {last}");
        // After training, the true proposal survives with the right class
        // and the false one is rejected as background.
        let refined = roi.refine(&f, &grid(), &props);
        assert_eq!(refined.len(), 1, "refined: {refined:?}");
        assert_eq!(refined[0].class_id, 2);
    }

    #[test]
    fn train_step_no_matchable_proposals() {
        let mut rng = Rng::new(4);
        let mut roi = RoiHead::new(32, 3, &mut rng);
        let f = features(&mut rng);
        // IoU in the ignore band (0.3, 0.5): no loss contribution.
        let gts = vec![GtBox { class_id: 0, x1: 0.0, y1: 0.0, x2: 10.0, y2: 10.0 }];
        let props = vec![Detection::new(BBox::new(2.0, 2.0, 12.0, 12.0), 0, 0.5)];
        let b: BBox = gts[0].into();
        let iou = props[0].bbox.iou(&b);
        assert!(iou > 0.3 && iou < 0.5, "test setup: iou {iou}");
        assert_eq!(roi.train_step(&f, &grid(), &props, &gts), 0.0);
    }
}
