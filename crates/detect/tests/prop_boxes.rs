//! Property-based tests of the box/NMS/WBF substrate.

use ecofusion_detect::{
    fusion_loss, nms, soft_nms, weighted_boxes_fusion, BBox, Detection, WbfParams,
};
use ecofusion_scene::GtBox;
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..60.0, 0.0f32..60.0, 0.5f32..20.0, 0.5f32..20.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h))
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (arb_bbox(), 0usize..8, 0.01f32..1.0)
        .prop_map(|(bbox, class_id, score)| Detection::new(bbox, class_id, score))
}

proptest! {
    #[test]
    fn iou_bounded_and_symmetric(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn iou_with_self_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn giou_never_exceeds_iou(a in arb_bbox(), b in arb_bbox()) {
        prop_assert!(a.giou(&b) <= a.iou(&b) + 1e-6);
        prop_assert!(a.giou(&b) >= -1.0 - 1e-6);
    }

    #[test]
    fn intersection_bounded_by_smaller_area(a in arb_bbox(), b in arb_bbox()) {
        let i = a.intersection(&b);
        prop_assert!(i <= a.area().min(b.area()) + 1e-4);
        prop_assert!(i >= 0.0);
    }

    #[test]
    fn nms_output_is_subset_without_violations(
        dets in prop::collection::vec(arb_detection(), 0..40),
        thresh in 0.1f32..0.9,
    ) {
        let kept = nms(dets.clone(), thresh);
        prop_assert!(kept.len() <= dets.len());
        // Every kept detection existed in the input.
        for k in &kept {
            prop_assert!(dets.iter().any(|d| d == k));
        }
        // No same-class pair above the threshold survives.
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                if a.class_id == b.class_id {
                    prop_assert!(a.bbox.iou(&b.bbox) <= thresh + 1e-6);
                }
            }
        }
    }

    #[test]
    fn nms_is_idempotent(
        dets in prop::collection::vec(arb_detection(), 0..30),
        thresh in 0.1f32..0.9,
    ) {
        let once = nms(dets, thresh);
        let twice = nms(once.clone(), thresh);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn soft_nms_never_raises_scores(
        dets in prop::collection::vec(arb_detection(), 0..30),
    ) {
        let out = soft_nms(dets.clone(), 0.5, 0.01);
        let max_in = dets.iter().map(|d| d.score).fold(0.0f32, f32::max);
        for d in &out {
            prop_assert!(d.score <= max_in + 1e-6);
        }
    }

    #[test]
    fn wbf_fused_boxes_inside_convex_hull(
        a in prop::collection::vec(arb_detection(), 1..10),
        b in prop::collection::vec(arb_detection(), 1..10),
    ) {
        let hull = |dets: &[Vec<Detection>]| {
            let mut x1 = f32::INFINITY;
            let mut y1 = f32::INFINITY;
            let mut x2 = f32::NEG_INFINITY;
            let mut y2 = f32::NEG_INFINITY;
            for d in dets.iter().flatten() {
                x1 = x1.min(d.bbox.x1);
                y1 = y1.min(d.bbox.y1);
                x2 = x2.max(d.bbox.x2);
                y2 = y2.max(d.bbox.y2);
            }
            (x1, y1, x2, y2)
        };
        let inputs = vec![a, b];
        let (x1, y1, x2, y2) = hull(&inputs);
        let fused = weighted_boxes_fusion(&inputs, &WbfParams::default(), 2);
        for f in &fused {
            prop_assert!(f.bbox.x1 >= x1 - 1e-3 && f.bbox.x2 <= x2 + 1e-3);
            prop_assert!(f.bbox.y1 >= y1 - 1e-3 && f.bbox.y2 <= y2 + 1e-3);
            prop_assert!(f.score <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn wbf_output_not_larger_than_input(
        a in prop::collection::vec(arb_detection(), 0..12),
        b in prop::collection::vec(arb_detection(), 0..12),
    ) {
        let n_in = a.len() + b.len();
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        prop_assert!(fused.len() <= n_in);
    }

    #[test]
    fn nms_scores_bounded_and_sorted(
        dets in prop::collection::vec(arb_detection(), 0..40),
        thresh in 0.1f32..0.9,
    ) {
        let kept = nms(dets, thresh);
        for d in &kept {
            prop_assert!((0.0..=1.0).contains(&d.score), "score {}", d.score);
        }
        for w in kept.windows(2) {
            prop_assert!(w[0].score >= w[1].score, "output not sorted by score");
        }
    }

    #[test]
    fn nms_equal_scores_keep_input_order(
        boxes in prop::collection::vec(arb_bbox(), 0..25),
        thresh in 0.1f32..0.9,
        score in 0.05f32..1.0,
    ) {
        // All detections share one score: the sort is stable, so the
        // suppression scan must visit (and therefore keep) survivors in
        // input order — equal-score inputs never get reordered.
        let dets: Vec<Detection> =
            boxes.into_iter().map(|b| Detection::new(b, 0, score)).collect();
        let kept = nms(dets.clone(), thresh);
        let mut cursor = 0usize;
        for k in &kept {
            let pos = dets[cursor..]
                .iter()
                .position(|d| d == k)
                .expect("kept detection out of input order");
            cursor += pos + 1;
        }
    }

    #[test]
    fn soft_nms_scores_stay_in_unit_interval(
        dets in prop::collection::vec(arb_detection(), 0..25),
        sigma in 0.05f32..1.0,
    ) {
        for d in soft_nms(dets, sigma, 0.01) {
            prop_assert!((0.0..=1.0).contains(&d.score), "score {}", d.score);
        }
    }

    #[test]
    fn wbf_scores_in_unit_interval_and_sorted(
        a in prop::collection::vec(arb_detection(), 0..12),
        b in prop::collection::vec(arb_detection(), 0..12),
    ) {
        // Member scores are in (0, 1]; fused scores (member average times
        // the model-agreement rescale) must stay in [0, 1].
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        for d in &fused {
            prop_assert!((0.0..=1.0).contains(&d.score), "score {}", d.score);
        }
        for w in fused.windows(2) {
            prop_assert!(w[0].score >= w[1].score, "output not sorted by score");
        }
    }

    #[test]
    fn wbf_preserves_classes_present_in_inputs(
        a in prop::collection::vec(arb_detection(), 0..12),
        b in prop::collection::vec(arb_detection(), 0..12),
    ) {
        let classes: std::collections::BTreeSet<usize> =
            a.iter().chain(&b).map(|d| d.class_id).collect();
        let fused = weighted_boxes_fusion(&[a, b], &WbfParams::default(), 2);
        for d in &fused {
            prop_assert!(classes.contains(&d.class_id), "class {} not in inputs", d.class_id);
        }
    }

    #[test]
    fn wbf_equal_scores_keep_input_order_when_disjoint(
        n in 1usize..10,
        score in 0.1f32..1.0,
    ) {
        // Disjoint same-score boxes: no clustering happens and the stable
        // score sort must leave the flatten order (input order) intact.
        let dets: Vec<Detection> = (0..n)
            .map(|i| Detection::new(BBox::new(i as f32 * 40.0, 0.0, i as f32 * 40.0 + 8.0, 8.0), 0, score))
            .collect();
        let fused = weighted_boxes_fusion(std::slice::from_ref(&dets), &WbfParams::default(), 1);
        prop_assert_eq!(fused.len(), dets.len());
        for (f, d) in fused.iter().zip(&dets) {
            prop_assert!((f.bbox.x1 - d.bbox.x1).abs() < 1e-6, "order changed");
        }
    }

    #[test]
    fn fusion_loss_non_negative_and_zero_on_empty(
        dets in prop::collection::vec(arb_detection(), 0..15),
    ) {
        let gts: Vec<GtBox> = Vec::new();
        let loss = fusion_loss(&dets, &gts);
        prop_assert!(loss.total() >= 0.0);
        prop_assert_eq!(loss.misses, 0.0);
        let empty = fusion_loss(&[], &gts);
        prop_assert_eq!(empty.total(), 0.0);
    }

    #[test]
    fn fusion_loss_misses_scale_with_unmatched_gts(count in 1usize..6) {
        let gts: Vec<GtBox> = (0..count)
            .map(|i| GtBox {
                class_id: 0,
                x1: i as f32 * 30.0,
                y1: 0.0,
                x2: i as f32 * 30.0 + 8.0,
                y2: 8.0,
            })
            .collect();
        let loss = fusion_loss(&[], &gts);
        // Misses dominate and normalize per GT: constant per-object loss.
        prop_assert!((loss.total() - ecofusion_detect::metrics::MISS_PENALTY).abs() < 1e-5);
    }
}
