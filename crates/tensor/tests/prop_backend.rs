//! Property-based parity tests: the blocked backend must match the
//! reference backend within `1e-4` on every kernel, across randomized
//! shapes — matmul in all three transpose layouts, and convolution
//! forward + backward (weight, bias, and input gradients).

use ecofusion_tensor::backend::{Backend, Blocked, ConvSpec, Reference};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::Tensor;
use proptest::prelude::*;

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())), "{what}[{i}]: {x} vs {y}");
    }
}

fn random_tensor(shape: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::randn(shape, 1.0, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_parity(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        let want = a.matmul_with(&b, &Reference);
        let got = a.matmul_with(&b, &Blocked);
        assert_close(want.data(), got.data(), "matmul");
    }

    #[test]
    fn matmul_tn_parity(m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = random_tensor(&[k, m], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        let want = a.matmul_tn_with(&b, &Reference);
        let got = a.matmul_tn_with(&b, &Blocked);
        assert_close(want.data(), got.data(), "matmul_tn");
    }

    #[test]
    fn matmul_nt_parity(m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[n, k], &mut rng);
        let want = a.matmul_nt_with(&b, &Reference);
        let got = a.matmul_nt_with(&b, &Blocked);
        assert_close(want.data(), got.data(), "matmul_nt");
    }

    #[test]
    fn conv_forward_parity(
        batch in 1usize..4,
        cin in 1usize..4,
        cout in 1usize..5,
        hw in 3usize..10,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        // Geometry must stay valid: padded input at least one kernel.
        if hw + 2 * padding >= kernel {
            let spec =
                ConvSpec { in_channels: cin, out_channels: cout, kernel, stride, padding };
            let mut rng = Rng::new(seed);
            let x = random_tensor(&[batch, cin, hw, hw], &mut rng);
            let w = random_tensor(&[cout, spec.patch_len()], &mut rng);
            let bias: Vec<f32> = (0..cout).map(|_| rng.normal(0.0, 0.5) as f32).collect();
            let mut s1 = Vec::new();
            let mut s2 = Vec::new();
            let want = Reference.conv2d_forward(&x, &w, &bias, &spec, &mut s1);
            let got = Blocked.conv2d_forward(&x, &w, &bias, &spec, &mut s2);
            prop_assert_eq!(want.shape(), got.shape());
            assert_close(want.data(), got.data(), "conv_forward");
        }
    }

    #[test]
    fn conv_backward_parity(
        batch in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        if hw >= kernel {
            let padding = kernel / 2;
            let spec =
                ConvSpec { in_channels: cin, out_channels: cout, kernel, stride, padding };
            let mut rng = Rng::new(seed);
            let x = random_tensor(&[batch, cin, hw, hw], &mut rng);
            let w = random_tensor(&[cout, spec.patch_len()], &mut rng);
            let (ho, wo) = spec.out_size(hw, hw);
            let grad_out = random_tensor(&[batch, cout, ho, wo], &mut rng);
            let mut s1 = Vec::new();
            let mut s2 = Vec::new();
            let want = Reference.conv2d_backward(&x, &w, &grad_out, &spec, &mut s1, false);
            let got = Blocked.conv2d_backward(&x, &w, &grad_out, &spec, &mut s2, false);
            assert_close(want.dw.data(), got.dw.data(), "conv_backward dw");
            assert_close(want.db.data(), got.db.data(), "conv_backward db");
            assert_close(want.dx.data(), got.dx.data(), "conv_backward dx");
        }
    }
}
