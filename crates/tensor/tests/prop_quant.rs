//! Property-based tests for the int8 quantization path: the symmetric
//! per-channel scheme must round-trip every weight within half a
//! quantization step, the int8 GEMM must agree exactly with a naive i32
//! reduction, and the activation quantizer must saturate instead of
//! wrapping.

use ecofusion_tensor::quant::{gemm_i8_nt, quantize_activations, quantize_per_channel, QMAX};
use ecofusion_tensor::rng::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantize→dequantize error is bounded by scale/2 per channel (the
    /// round-to-nearest guarantee), for every element.
    #[test]
    fn quantize_roundtrip_within_scale_bound(
        rows in 1usize..12,
        cols in 1usize..48,
        amp in 0.01f32..50.0,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let w: Vec<f32> =
            (0..rows * cols).map(|_| rng.uniform(-amp as f64, amp as f64) as f32).collect();
        let qw = quantize_per_channel(&w, rows, cols);
        prop_assert_eq!(qw.scales.len(), rows);
        for r in 0..rows {
            let scale = qw.scales[r];
            prop_assert!(scale > 0.0);
            for i in 0..cols {
                let orig = w[r * cols + i];
                let deq = qw.q[r * cols + i] as f32 * scale;
                prop_assert!(
                    (deq - orig).abs() <= scale * 0.5 + scale * 1e-4,
                    "row {} elem {}: {} vs {} (scale {})", r, i, deq, orig, scale
                );
            }
        }
    }

    /// The per-row max-abs element quantizes to exactly ±127, so the full
    /// int8 range is used for every channel.
    #[test]
    fn quantization_saturates_range(
        rows in 1usize..8,
        cols in 2usize..32,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let w: Vec<f32> =
            (0..rows * cols).map(|_| rng.uniform(-3.0, 3.0) as f32).collect();
        let qw = quantize_per_channel(&w, rows, cols);
        for r in 0..rows {
            let row = &qw.q[r * cols..(r + 1) * cols];
            let max_q = row.iter().map(|&v| (v as i32).abs()).max().unwrap();
            // All-zero rows keep scale 1.0 and stay zero; anything else
            // must hit the endpoint.
            let all_zero = w[r * cols..(r + 1) * cols].iter().all(|&v| v == 0.0);
            if !all_zero {
                prop_assert_eq!(max_q, QMAX as i32, "row {} under-uses the range", r);
            }
        }
    }

    /// Activation quantization clamps out-of-range values instead of
    /// wrapping, and round-trips in-range values within scale/2.
    #[test]
    fn activation_quantization_saturates_and_roundtrips(
        len in 1usize..128,
        scale in 0.001f32..2.0,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let x: Vec<f32> =
            (0..len).map(|_| rng.uniform(-400.0, 400.0) as f32).collect();
        let mut q = Vec::new();
        quantize_activations(&x, scale, &mut q);
        prop_assert_eq!(q.len(), len);
        for (&orig, &qv) in x.iter().zip(&q) {
            let limit = scale * QMAX;
            if orig.abs() <= limit {
                prop_assert!(((qv as f32 * scale) - orig).abs() <= scale * 0.5 + 1e-5);
            } else {
                prop_assert_eq!(qv as f32, QMAX.copysign(orig));
            }
        }
    }

    /// The packed-panel microtiled int8 GEMM agrees EXACTLY with the
    /// naive i32 triple loop — integer accumulation leaves no rounding
    /// slack.
    #[test]
    fn gemm_i8_exact_vs_naive(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.uniform(-127.0, 128.0).floor() as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|_| rng.uniform(-127.0, 128.0).floor() as i8).collect();
        let mut c = vec![0i32; m * n];
        gemm_i8_nt(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[j * k + p] as i32;
                }
                prop_assert_eq!(c[i * n + j], acc, "({}, {})", i, j);
            }
        }
    }
}
