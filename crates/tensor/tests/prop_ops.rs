//! Property-based tests of the tensor kernels and layer gradients.

use ecofusion_tensor::layer::{Layer, Linear};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use proptest::prelude::*;

fn arb_shape2() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition((m, k, n) in arb_shape2(), seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = Tensor::randn(&[k, n], 1.0, &mut rng);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution((m, _k, n) in arb_shape2(), seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_tn_equals_explicit((m, k, n) in arb_shape2(), seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[k, m], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn(&[rows, cols], 3.0, &mut rng);
        let s = t.softmax_rows();
        for r in 0..rows {
            let mut sum = 0.0f32;
            for c in 0..cols {
                let v = s.get2(r, c);
                prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_split_roundtrip(c1 in 1usize..4, c2 in 1usize..4, hw in 1usize..5, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[2, c1, hw, hw], 1.0, &mut rng);
        let b = Tensor::randn(&[2, c2, hw, hw], 1.0, &mut rng);
        let cat = Tensor::concat_channels(&[&a, &b]);
        let parts = cat.split_channels(&[c1, c2]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
    }

    #[test]
    fn linear_gradient_matches_finite_difference(
        inf in 1usize..5, outf in 1usize..5, seed in 0u64..200,
    ) {
        let mut rng = Rng::new(seed);
        let mut layer = Linear::new(inf, outf, &mut rng);
        let x = Tensor::randn(&[2, inf], 1.0, &mut rng);
        // Objective: 0.5 * ||y||^2; analytic input grad via backward.
        let y = layer.forward(&x, true);
        layer.zero_grad();
        let grad = layer.backward(&y);
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let fp = 0.5 * layer.forward(&xp, false).norm_sq();
            xp.data_mut()[i] -= 2.0 * eps;
            let fm = 0.5 * layer.forward(&xp, false).norm_sq();
            let num = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (num - grad.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dim {i}: numeric {num} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn scale_then_sum_is_linear(len in 1usize..32, k in -3.0f32..3.0, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn(&[len], 1.0, &mut rng);
        let scaled_sum = t.scaled(k).sum();
        prop_assert!((scaled_sum - k * t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs() * k.abs()));
    }

    #[test]
    fn rng_normal_is_finite(mean in -10.0f64..10.0, std in 0.0f64..5.0, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..32 {
            let v = rng.normal(mean, std);
            prop_assert!(v.is_finite());
        }
    }
}
