//! Gradient-descent optimizers.
//!
//! Optimizers mutate parameters via [`Layer::visit_params`]; per-parameter
//! state (momentum / Adam moments) lives inside [`crate::param::Param`], so
//! one optimizer instance can drive any number of modules.

use crate::layer::Layer;
use crate::param::Param;

/// A parameter-update rule.
pub trait Optimizer {
    /// Applies one update step to every parameter yielded by `visit`.
    ///
    /// `visit` is handed the per-parameter update function and must call it
    /// on every trainable parameter; this indirection lets one optimizer
    /// step models composed of many modules (stems + branches) that do not
    /// form a single [`Layer`].
    #[allow(clippy::type_complexity)] // double-dyn visitor is the whole point
    fn step_visit(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param)));

    /// Applies one update step to every parameter of `layer` using the
    /// gradients accumulated since the last [`Layer::zero_grad`].
    fn step(&mut self, layer: &mut dyn Layer) {
        self.step_visit(&mut |f| layer.visit_params(f));
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step_visit(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        visit(&mut |p| {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let m = mu * p.m.data()[i] + g;
                p.m.data_mut()[i] = m;
                p.value.data_mut()[i] -= lr * m;
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, t: 0 }
    }
}

impl Optimizer for Adam {
    fn step_visit(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) {
        self.t += 1;
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        visit(&mut |p| {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let m = b1 * p.m.data()[i] + (1.0 - b1) * g;
                let v = b2 * p.v.data()[i] + (1.0 - b2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                p.value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Sequential};
    use crate::loss;
    use crate::rng::Rng;
    use crate::tensor::Tensor;

    /// Fits y = 2x + 1 with a single linear unit.
    fn fit_line(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = Rng::new(42);
        let mut net = Sequential::new(vec![Box::new(Linear::new(1, 1, &mut rng))]);
        let xs = Tensor::from_vec(&[8, 1], (0..8).map(|i| i as f32 / 4.0).collect());
        let ys = xs.map(|v| 2.0 * v + 1.0);
        let mut last = f32::MAX;
        for _ in 0..steps {
            let pred = net.forward(&xs, true);
            let (l, grad) = loss::smooth_l1(&pred, &ys, 1.0);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net);
            last = l;
        }
        last
    }

    #[test]
    fn sgd_converges_on_regression() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let final_loss = fit_line(&mut opt, 300);
        assert!(final_loss < 1e-3, "loss {final_loss}");
    }

    #[test]
    fn adam_converges_on_regression() {
        let mut opt = Adam::new(0.05, 0.0);
        let final_loss = fit_line(&mut opt, 300);
        assert!(final_loss < 1e-3, "loss {final_loss}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::new(1);
        let mut net = Sequential::new(vec![Box::new(Linear::new(4, 4, &mut rng))]);
        let before: f32 = {
            let mut s = 0.0;
            net.visit_params(&mut |p| s += p.value.norm_sq());
            s
        };
        // No gradient signal: only decay acts.
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        for _ in 0..10 {
            net.zero_grad();
            opt.step(&mut net);
        }
        let after: f32 = {
            let mut s = 0.0;
            net.visit_params(&mut |p| s += p.value.norm_sq());
            s
        };
        assert!(after < before, "decay should shrink norm: {before} -> {after}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0, 0.0);
    }
}
