//! Weight initialization schemes.

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Kaiming (He) normal initialization for layers followed by ReLU.
///
/// `fan_in` is the number of input connections per output unit.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    Tensor::randn(shape, std as f32, rng)
}

/// Xavier/Glorot uniform initialization for linear/attention projections.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    Tensor::rand_uniform(shape, -limit as f32, limit as f32, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Rng::new(1);
        let w = kaiming_normal(&[10_000], 50, &mut rng);
        let mean = w.mean();
        let var = w.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / w.len() as f32;
        let want = 2.0 / 50.0;
        assert!((var - want).abs() < want * 0.2, "var {var}, want {want}");
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rng::new(2);
        let w = xavier_uniform(&[1000], 30, 50, &mut rng);
        let limit = (6.0f32 / 80.0).sqrt();
        assert!(w.max() <= limit && w.min() >= -limit);
    }
}
