//! Loss functions used by the paper's detector and gate training.
//!
//! Each function returns `(mean_loss, gradient)` where the gradient is with
//! respect to the first argument and already includes the `1/N` averaging
//! factor, so it can be fed straight into [`crate::layer::Layer::backward`].

use crate::tensor::Tensor;

/// Softmax cross-entropy over rows of `logits` against integer labels.
///
/// Matches the classification term of the Faster R-CNN loss (Ren et al.).
///
/// # Panics
/// Panics if `logits` is not 2-D, `labels.len()` differs from the batch
/// size, or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "softmax_cross_entropy expects (N, K) logits");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let probs = logits.softmax_rows();
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        let p = probs.get2(i, y).max(1e-12);
        loss -= (p as f64).ln();
        grad.set2(i, y, grad.get2(i, y) - 1.0);
    }
    grad.scale(1.0 / n as f32);
    ((loss / n as f64) as f32, grad)
}

/// Smooth L1 (Huber) loss, element-wise mean, as used for bounding-box
/// regression in Faster R-CNN:
///
/// ```text
/// l(d) = 0.5·d²/β   if |d| < β
///        |d| − 0.5β otherwise
/// ```
///
/// # Panics
/// Panics if shapes differ or `beta <= 0`.
pub fn smooth_l1(pred: &Tensor, target: &Tensor, beta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1 shape mismatch");
    assert!(beta > 0.0, "smooth_l1 beta must be positive");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f64;
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        if d.abs() < beta {
            loss += (0.5 * d * d / beta) as f64;
            grad.data_mut()[i] = d / beta / n;
        } else {
            loss += (d.abs() - 0.5 * beta) as f64;
            grad.data_mut()[i] = d.signum() / n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Binary cross-entropy on logits with optional per-element weights, used
/// for the objectness term of the detection head.
///
/// # Panics
/// Panics if shapes differ (including the weights, when provided).
pub fn bce_with_logits(
    logits: &Tensor,
    targets: &Tensor,
    weights: Option<&Tensor>,
) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    if let Some(w) = weights {
        assert_eq!(w.shape(), logits.shape(), "bce weight shape mismatch");
    }
    let n = logits.len().max(1) as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f64;
    for i in 0..logits.len() {
        let x = logits.data()[i];
        let t = targets.data()[i];
        let w = weights.map_or(1.0, |w| w.data()[i]);
        // log(1 + e^{-|x|}) + max(x,0) - x*t  (numerically stable form)
        let l = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        loss += (w * l) as f64;
        let p = crate::layer::sigmoid_scalar(x);
        grad.data_mut()[i] = w * (p - t) / n;
    }
    ((loss / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn finite_diff_scalar(f: impl Fn(&Tensor) -> f32, x: &Tensor, grad: &Tensor, tol: f32) {
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let fp = f(&xp);
            xp.data_mut()[i] = orig - eps;
            let fm = f(&xp);
            xp.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs()),
                "grad mismatch at {i}: numeric {num}, analytic {ana}"
            );
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(&[1, 3], vec![100.0, 0.0, 0.0]);
        let (l, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(l < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (l, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_differences() {
        let mut rng = Rng::new(1);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = vec![0, 2, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        finite_diff_scalar(|x| softmax_cross_entropy(x, &labels).0, &logits, &grad, 1e-2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_bad_label_panics() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }

    #[test]
    fn smooth_l1_zero_at_equality() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let (l, g) = smooth_l1(&a, &a, 1.0);
        assert_eq!(l, 0.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn smooth_l1_quadratic_then_linear() {
        let pred = Tensor::from_vec(&[2], vec![0.5, 3.0]);
        let target = Tensor::zeros(&[2]);
        let (l, _) = smooth_l1(&pred, &target, 1.0);
        // 0.5*0.25 + (3-0.5) = 0.125 + 2.5, mean over 2 elements.
        assert!((l - (0.125 + 2.5) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn smooth_l1_grad_matches_finite_differences() {
        let mut rng = Rng::new(2);
        let pred = Tensor::randn(&[6], 2.0, &mut rng);
        let target = Tensor::randn(&[6], 2.0, &mut rng);
        let (_, grad) = smooth_l1(&pred, &target, 1.0);
        finite_diff_scalar(|x| smooth_l1(x, &target, 1.0).0, &pred, &grad, 1e-2);
    }

    #[test]
    fn bce_known_value() {
        let logits = Tensor::from_vec(&[1], vec![0.0]);
        let targets = Tensor::from_vec(&[1], vec![1.0]);
        let (l, _) = bce_with_logits(&logits, &targets, None);
        assert!((l - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_matches_finite_differences() {
        let mut rng = Rng::new(3);
        let logits = Tensor::randn(&[5], 1.5, &mut rng);
        let targets = Tensor::from_vec(&[5], vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        let (_, grad) = bce_with_logits(&logits, &targets, None);
        finite_diff_scalar(|x| bce_with_logits(x, &targets, None).0, &logits, &grad, 1e-2);
    }

    #[test]
    fn bce_weights_scale_loss() {
        let logits = Tensor::from_vec(&[2], vec![0.3, -0.7]);
        let targets = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let w2 = Tensor::full(&[2], 2.0);
        let (l1, _) = bce_with_logits(&logits, &targets, None);
        let (l2, _) = bce_with_logits(&logits, &targets, Some(&w2));
        assert!((l2 - 2.0 * l1).abs() < 1e-6);
    }

    #[test]
    fn bce_extreme_logits_stable() {
        let logits = Tensor::from_vec(&[2], vec![500.0, -500.0]);
        let targets = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let (l, g) = bce_with_logits(&logits, &targets, None);
        assert!(l.is_finite());
        assert!(g.data().iter().all(|v| v.is_finite()));
    }
}
