//! Model parameter (de)serialization.
//!
//! Parameters are extracted in [`Layer::visit_params`] order into a plain
//! `Vec<Tensor>` snapshot that serializes with serde. Loading validates
//! count and shapes, so a snapshot can only be restored into an identically
//! structured model.

use crate::layer::Layer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A serializable snapshot of a module's parameter values and state
/// buffers (batch-norm running statistics).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ParamSnapshot {
    tensors: Vec<Tensor>,
    #[serde(default)]
    buffers: Vec<Tensor>,
}

impl ParamSnapshot {
    /// Captures the current parameter values and buffers of `layer`.
    pub fn capture(layer: &mut dyn Layer) -> Self {
        let mut tensors = Vec::new();
        layer.visit_params(&mut |p| tensors.push(p.value.clone()));
        let mut buffers = Vec::new();
        layer.visit_buffers(&mut |b| buffers.push(b.clone()));
        ParamSnapshot { tensors, buffers }
    }

    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Restores the snapshot into `layer`.
    ///
    /// # Errors
    /// Returns [`RestoreSnapshotError`] if the parameter count or any shape
    /// does not match.
    pub fn restore(&self, layer: &mut dyn Layer) -> Result<(), RestoreSnapshotError> {
        let mut count = 0;
        layer.visit_params(&mut |_| count += 1);
        if count != self.tensors.len() {
            return Err(RestoreSnapshotError::CountMismatch {
                expected: self.tensors.len(),
                found: count,
            });
        }
        let mut buf_count = 0;
        layer.visit_buffers(&mut |_| buf_count += 1);
        if buf_count != self.buffers.len() {
            return Err(RestoreSnapshotError::CountMismatch {
                expected: self.buffers.len(),
                found: buf_count,
            });
        }
        // Validate shapes first so restore is all-or-nothing.
        let mut idx = 0;
        let mut shape_err = None;
        layer.visit_params(&mut |p| {
            if shape_err.is_none() && p.value.shape() != self.tensors[idx].shape() {
                shape_err = Some(RestoreSnapshotError::ShapeMismatch {
                    index: idx,
                    expected: self.tensors[idx].shape().to_vec(),
                    found: p.value.shape().to_vec(),
                });
            }
            idx += 1;
        });
        let mut idx = 0;
        layer.visit_buffers(&mut |b| {
            if shape_err.is_none() && b.shape() != self.buffers[idx].shape() {
                shape_err = Some(RestoreSnapshotError::ShapeMismatch {
                    index: idx,
                    expected: self.buffers[idx].shape().to_vec(),
                    found: b.shape().to_vec(),
                });
            }
            idx += 1;
        });
        if let Some(e) = shape_err {
            return Err(e);
        }
        let mut idx = 0;
        layer.visit_params(&mut |p| {
            p.value = self.tensors[idx].clone();
            idx += 1;
        });
        let mut idx = 0;
        layer.visit_buffers(&mut |b| {
            *b = self.buffers[idx].clone();
            idx += 1;
        });
        Ok(())
    }
}

/// Error restoring a [`ParamSnapshot`] into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreSnapshotError {
    /// The model has a different number of parameter tensors.
    CountMismatch {
        /// Tensors in the snapshot.
        expected: usize,
        /// Tensors in the target model.
        found: usize,
    },
    /// A tensor shape differs at the given visit index.
    ShapeMismatch {
        /// Visit-order index of the offending tensor.
        index: usize,
        /// Shape stored in the snapshot.
        expected: Vec<usize>,
        /// Shape in the target model.
        found: Vec<usize>,
    },
}

impl fmt::Display for RestoreSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreSnapshotError::CountMismatch { expected, found } => {
                write!(f, "snapshot has {expected} tensors but model has {found}")
            }
            RestoreSnapshotError::ShapeMismatch { index, expected, found } => {
                write!(f, "tensor {index} shape mismatch: snapshot {expected:?}, model {found:?}")
            }
        }
    }
}

impl Error for RestoreSnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, ReLU, Sequential};
    use crate::rng::Rng;

    #[test]
    fn capture_restore_roundtrip() {
        let mut rng = Rng::new(1);
        let mut a = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(4, 2, &mut rng)),
        ]);
        let snap = ParamSnapshot::capture(&mut a);
        let mut b = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(4, 2, &mut rng)),
        ]);
        snap.restore(&mut b).unwrap();
        let x = crate::tensor::Tensor::randn(&[2, 3], 1.0, &mut rng);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya, yb);
    }

    #[test]
    fn restore_count_mismatch_errors() {
        let mut rng = Rng::new(2);
        let mut a = Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng))]);
        let snap = ParamSnapshot::capture(&mut a);
        let mut b = Sequential::new(vec![
            Box::new(Linear::new(2, 2, &mut rng)),
            Box::new(Linear::new(2, 2, &mut rng)),
        ]);
        let err = snap.restore(&mut b).unwrap_err();
        assert!(matches!(err, RestoreSnapshotError::CountMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn restore_shape_mismatch_errors_and_leaves_model_intact() {
        let mut rng = Rng::new(3);
        let mut a = Sequential::new(vec![Box::new(Linear::new(2, 3, &mut rng))]);
        let snap = ParamSnapshot::capture(&mut a);
        let mut b = Sequential::new(vec![Box::new(Linear::new(3, 2, &mut rng))]);
        let before = ParamSnapshot::capture(&mut b);
        let err = snap.restore(&mut b).unwrap_err();
        assert!(matches!(err, RestoreSnapshotError::ShapeMismatch { .. }));
        let after = ParamSnapshot::capture(&mut b);
        assert_eq!(before, after, "failed restore must not modify the model");
    }

    #[test]
    fn snapshot_serde_json_roundtrip() {
        let mut rng = Rng::new(4);
        let mut a = Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng))]);
        let snap = ParamSnapshot::capture(&mut a);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ParamSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
