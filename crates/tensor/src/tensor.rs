//! Dense `f32` tensor in row-major (NCHW for 4-D) layout.

use crate::backend::{self, Backend};
use crate::rng::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, heap-allocated `f32` tensor.
///
/// Shapes are dynamic; the layers in this crate use 2-D `(N, F)` and 4-D
/// `(N, C, H, W)` tensors. Storage is contiguous row-major.
///
/// # Example
///
/// ```
/// use ecofusion_tensor::Tensor;
/// let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get2(1, 2), 6.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, ..; n={}]", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor { shape: vec![0], data: Vec::new() }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    /// Panics if `shape` is empty.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape {:?} wants {} elements, got {}", shape, n, data.len());
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. N(0, std²) entries.
    ///
    /// # Panics
    /// Panics if `shape` is empty.
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal(0.0, std as f64) as f32).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. U(lo, hi) entries.
    ///
    /// # Panics
    /// Panics if `shape` is empty.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo as f64, hi as f64) as f32).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing no storage.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?} mismatch", self.shape, shape);
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?} mismatch", self.shape, shape);
        self.shape = shape.to_vec();
    }

    #[inline]
    fn idx2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        r * self.shape[1] + c
    }

    #[inline]
    fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element access for 2-D tensors.
    #[inline]
    pub fn get2(&self, r: usize, c: usize) -> f32 {
        self.data[self.idx2(r, c)]
    }

    /// Element assignment for 2-D tensors.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        let i = self.idx2(r, c);
        self.data[i] = v;
    }

    /// Element access for 4-D tensors.
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Element assignment for 4-D tensors.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.idx4(n, c, h, w);
        self.data[i] = v;
    }

    /// Adds another tensor element-wise in place.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise difference, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Element-wise product, returning a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f32) -> Tensor {
        let mut t = self.clone();
        t.scale(s);
        t
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Matrix multiplication `self (M,K) × other (K,N) → (M,N)` on the
    /// globally active [`Backend`].
    ///
    /// # Panics
    /// Panics if either tensor is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with(other, backend::active())
    }

    /// [`Tensor::matmul`] on an explicit backend.
    pub fn matmul_with(&self, other: &Tensor, backend: &dyn Backend) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {}x{} vs {}x{}", m, k, k2, n);
        let mut out = Tensor::zeros(&[m, n]);
        backend.gemm(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `selfᵀ (K,M)ᵀ × other (K,N) → (M,N)` without materializing the
    /// transpose, on the globally active [`Backend`].
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.matmul_tn_with(other, backend::active())
    }

    /// [`Tensor::matmul_tn`] on an explicit backend.
    pub fn matmul_tn_with(&self, other: &Tensor, backend: &dyn Backend) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_tn lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_tn rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        backend.gemm_tn(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `self (M,K) × otherᵀ (N,K)ᵀ → (M,N)` without materializing the
    /// transpose, on the globally active [`Backend`].
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.matmul_nt_with(other, backend::active())
    }

    /// [`Tensor::matmul_nt`] on an explicit backend.
    pub fn matmul_nt_with(&self, other: &Tensor, backend: &dyn Backend) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_nt rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        backend.gemm_nt(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Concatenates 4-D tensors along the channel axis.
    ///
    /// All inputs must share `N`, `H`, `W`.
    ///
    /// # Panics
    /// Panics if `parts` is empty or shapes are incompatible.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_channels needs at least one tensor");
        let n = parts[0].shape[0];
        let h = parts[0].shape[2];
        let w = parts[0].shape[3];
        let c_total: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.ndim(), 4, "concat_channels needs 4-D tensors");
                assert_eq!(p.shape[0], n, "batch mismatch");
                assert_eq!(p.shape[2], h, "height mismatch");
                assert_eq!(p.shape[3], w, "width mismatch");
                p.shape[1]
            })
            .sum();
        let mut out = Tensor::zeros(&[n, c_total, h, w]);
        let plane = h * w;
        for b in 0..n {
            let mut c_off = 0;
            for p in parts {
                let c = p.shape[1];
                let src = &p.data[b * c * plane..(b + 1) * c * plane];
                let dst =
                    &mut out.data[(b * c_total + c_off) * plane..(b * c_total + c_off + c) * plane];
                dst.copy_from_slice(src);
                c_off += c;
            }
        }
        out
    }

    /// Splits a 4-D tensor along channels into chunks of the given sizes
    /// (inverse of [`Tensor::concat_channels`]).
    ///
    /// # Panics
    /// Panics if the sizes do not sum to the channel count.
    pub fn split_channels(&self, sizes: &[usize]) -> Vec<Tensor> {
        assert_eq!(self.ndim(), 4, "split_channels needs a 4-D tensor");
        let (n, c_total, h, w) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        assert_eq!(sizes.iter().sum::<usize>(), c_total, "split sizes must sum to channels");
        let plane = h * w;
        let mut outs: Vec<Tensor> = sizes.iter().map(|&c| Tensor::zeros(&[n, c, h, w])).collect();
        for b in 0..n {
            let mut c_off = 0;
            for (out, &c) in outs.iter_mut().zip(sizes) {
                let src =
                    &self.data[(b * c_total + c_off) * plane..(b * c_total + c_off + c) * plane];
                let dst = &mut out.data[b * c * plane..(b + 1) * c * plane];
                dst.copy_from_slice(src);
                c_off += c;
            }
        }
        outs
    }

    /// Extracts sample `n` of a batched tensor as a batch of one.
    pub fn select_batch(&self, n: usize) -> Tensor {
        assert!(self.ndim() >= 2, "select_batch needs a batched tensor");
        assert!(n < self.shape[0], "batch index out of range");
        let per = self.data.len() / self.shape[0];
        let mut shape = self.shape.clone();
        shape[0] = 1;
        Tensor::from_vec(&shape, self.data[n * per..(n + 1) * per].to_vec())
    }

    /// Stacks batch-of-one tensors along the batch axis.
    ///
    /// # Panics
    /// Panics if `parts` is empty or trailing shapes differ.
    pub fn stack_batch(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_batch needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        let mut n = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "stack_batch trailing shape mismatch");
            n += p.shape[0];
            data.extend_from_slice(&p.data);
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = n;
        Tensor::from_vec(&shape, data)
    }

    /// Row-wise softmax for a 2-D tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = self.clone();
        for i in 0..m {
            let row = &mut out.data[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut s = 0.0;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                s += *v;
            }
            if s > 0.0 {
                for v in row.iter_mut() {
                    *v /= s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        assert_eq!(t.sum(), 0.0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zeros_empty_shape_panics() {
        let _ = Tensor::zeros(&[]);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn from_vec_len_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn indexing_2d_4d_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set2(1, 2, 7.5);
        assert_eq!(t.get2(1, 2), 7.5);
        let mut q = Tensor::zeros(&[2, 3, 4, 5]);
        q.set4(1, 2, 3, 4, -1.25);
        assert_eq!(q.get4(1, 2, 3, 4), -1.25);
        assert_eq!(q.get4(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let want = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        for (x, y) in want.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let want = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        for (x, y) in want.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scaled(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.map(|v| v * v).data(), &[1., 4., 9.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[4], vec![1., -2., 3., 0.]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.norm_sq(), 14.0);
    }

    #[test]
    fn concat_and_split_channels_roundtrip() {
        let mut rng = Rng::new(9);
        let a = Tensor::randn(&[2, 1, 3, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 3, 3, 3]);
        // Sample 1, channel 1 of cat must equal sample 1, channel 0 of b.
        assert_eq!(cat.get4(1, 1, 2, 2), b.get4(1, 0, 2, 2));
        let parts = cat.split_channels(&[1, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn select_and_stack_batch_roundtrip() {
        let mut rng = Rng::new(11);
        let t = Tensor::randn(&[3, 2, 2, 2], 1.0, &mut rng);
        let rows: Vec<Tensor> = (0..3).map(|i| t.select_batch(i)).collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        let back = Tensor::stack_batch(&refs);
        assert_eq!(back, t);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| s.get2(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Softmax is monotone in its input.
        assert!(s.get2(0, 2) > s.get2(0, 1));
    }

    #[test]
    fn softmax_rows_is_stable_for_large_logits() {
        let t = Tensor::from_vec(&[1, 2], vec![1000.0, 1001.0]);
        let s = t.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!((s.get2(0, 0) + s.get2(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn randn_distribution_sane() {
        let mut rng = Rng::new(123);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
