//! Seeded random number generation.
//!
//! Every stochastic component in the workspace (weight init, scene
//! generation, sensor noise, data shuffling) draws from [`Rng`], a thin
//! wrapper over `rand::rngs::StdRng` that adds the distributions we need
//! (normal via Box–Muller, Poisson via inversion) without pulling in
//! `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic random source.
///
/// # Example
///
/// ```
/// use ecofusion_tensor::rng::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second sample from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derives an independent child generator; used to give each worker or
    /// subsystem its own stream while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let s = self.inner.gen::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(s)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "uniform_usize bounds inverted");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli sample with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Normal sample via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                // Box–Muller: two uniforms -> two independent normals.
                let u1: f64 = self.inner.gen::<f64>().max(1e-300);
                let u2: f64 = self.inner.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }

    /// Poisson sample (Knuth's inversion; adequate for the small rates used
    /// by scene generation).
    pub fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.inner.gen::<f64>();
            if p <= l || k > 10_000 {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.inner.gen_range(0..items.len())])
        }
    }

    /// Raw 64-bit sample (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = Rng::new(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let v = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = Rng::new(8);
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::new(11);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
