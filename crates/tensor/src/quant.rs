//! Post-training int8 quantization: per-channel symmetric weights, an
//! i8×i8→i32 GEMM with the blocked backend's packing/microtile structure,
//! and a quantized stage chain built by walking a trained [`Sequential`].
//!
//! # Scheme
//!
//! Weights are quantized **per output channel** with symmetric scales
//! (`scale = max_abs / 127`, zero point 0); activations use one symmetric
//! per-tensor scale calibrated as the max absolute value observed over a
//! calibration set. Convolutions accumulate in `i32` — exact integer
//! arithmetic, so the int8 path is bit-deterministic on every machine —
//! and dequantize at the stage boundary:
//!
//! ```text
//! y[c] ≈ Σ q_x · q_w[c] · (s_x · s_w[c]) + bias[c]
//! ```
//!
//! BatchNorm folds to its evaluation-mode affine form
//! (`scale = γ/√(var+ε)`, `shift = β − mean·scale`) and runs in f32
//! between quantized convolutions, as do ReLU and max-pool — they are
//! memory-bound, so int8 buys nothing there and f32 keeps the numerics
//! close to the float reference.
//!
//! # Kernel structure
//!
//! [`gemm_i8_nt`] mirrors the `Blocked` f32 backend: the B operand is
//! packed into contiguous column panels, an `MR×NR` register microtile
//! accumulates `[[i32; NR]; MR]`, and every reduction runs over `k` in
//! increasing order (determinism contract — trivially exact here since
//! integer addition is associative, but the structure keeps the two
//! kernels reviewable side by side).

use crate::backend::ConvSpec;
use crate::layer::{BatchNorm2d, Conv2d, Sequential};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread quantized-activation buffer (avoids an allocation per
    /// forward, mirroring the blocked backend's scratch reuse).
    static QX_I8: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread im2col column buffer.
    static COLS_I8: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread i32 GEMM accumulator buffer.
    static ACC_I32: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed B panel for [`gemm_i8_nt`] (steady-state int8
    /// inference must not allocate per call).
    static PANEL_I8: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
}

/// Largest representable quantized magnitude (symmetric int8).
pub const QMAX: f32 = 127.0;

/// Register microtile rows (A rows per microkernel call).
const MR_I8: usize = 8;
/// Register microtile columns (packed B panel width).
const NR_I8: usize = 8;

// ---------------------------------------------------------------------------
// Quantize / dequantize primitives
// ---------------------------------------------------------------------------

/// Per-output-channel symmetric int8 weights for a `(rows × cols)` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantWeights {
    /// Quantized values, row-major `(rows × cols)`.
    pub q: Vec<i8>,
    /// One scale per row (output channel); dequant is `q * scale`.
    pub scales: Vec<f32>,
    /// Output channels.
    pub rows: usize,
    /// Patch length (`C_in·k·k` for conv weights).
    pub cols: usize,
}

/// Quantizes a row-major `(rows × cols)` f32 matrix with one symmetric
/// scale per row: `scale = max_abs(row) / 127` (1.0 for all-zero rows so
/// dequantization stays well-defined).
///
/// # Panics
/// Panics if `w.len() != rows * cols`.
pub fn quantize_per_channel(w: &[f32], rows: usize, cols: usize) -> QuantWeights {
    assert_eq!(w.len(), rows * cols, "weight length mismatch");
    let mut q = vec![0i8; rows * cols];
    let mut scales = vec![1.0f32; rows];
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / QMAX } else { 1.0 };
        scales[r] = scale;
        let inv = 1.0 / scale;
        for (dst, &v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *dst = (v * inv).round().clamp(-QMAX, QMAX) as i8;
        }
    }
    QuantWeights { q, scales, rows, cols }
}

/// Quantizes activations with a symmetric per-tensor scale into `out`
/// (cleared and refilled): `q = round(x / scale)` clamped to ±127.
/// Rounding is ties-to-even — the single-instruction vector rounding mode,
/// so this pass auto-vectorizes; the half-step tie cases it decides
/// differently from `round()` are measure-zero against calibrated scales
/// and stay inside the ±scale/2 round-trip bound either way.
pub fn quantize_activations(x: &[f32], scale: f32, out: &mut Vec<i8>) {
    let inv = 1.0 / scale;
    out.clear();
    out.reserve(x.len());
    out.extend(x.iter().map(|&v| (v * inv).round_ties_even().clamp(-QMAX, QMAX) as i8));
}

/// Symmetric per-tensor activation scale from a calibration sample:
/// `max_abs / 127` (1.0 when the sample is all zeros).
pub fn calib_scale(acts: &[f32]) -> f32 {
    let max_abs = acts.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs > 0.0 {
        max_abs / QMAX
    } else {
        1.0
    }
}

/// Folds evaluation-mode batch-norm into a per-channel affine:
/// `(scale, shift)` with `scale = γ/√(var+ε)`, `shift = β − mean·scale`.
pub fn fold_batchnorm(bn: &BatchNorm2d) -> (Vec<f32>, Vec<f32>) {
    let gamma = bn.gamma();
    let beta = bn.beta();
    let mean = bn.running_mean();
    let var = bn.running_var();
    let eps = bn.eps();
    let mut scale = Vec::with_capacity(gamma.len());
    let mut shift = Vec::with_capacity(gamma.len());
    for ci in 0..gamma.len() {
        let s = gamma[ci] / (var[ci] + eps).sqrt();
        scale.push(s);
        shift.push(beta[ci] - mean[ci] * s);
    }
    (scale, shift)
}

// ---------------------------------------------------------------------------
// Int8 GEMM kernel
// ---------------------------------------------------------------------------

/// Scalar i8 dot product with i32 accumulation (row/column tails).
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// `C (m×n) = A (m×k) · Bᵀ` where `B` is stored `(n×k)`, accumulating in
/// `i32`. `c` is fully overwritten. Matches the f32 `gemm_nt` orientation
/// used by the im2col convolution lowering (B rows are weight channels).
///
/// # Panics
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_i8_nt(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0);
    PANEL_I8.with(|panel_buf| {
        let mut panel = panel_buf.borrow_mut();
        panel.clear();
        panel.resize(k * NR_I8, 0);
        let mut j0 = 0;
        while j0 < n {
            let jw = NR_I8.min(n - j0);
            if jw == NR_I8 {
                // Pack the B column panel interleaved: panel[p*NR + j] holds
                // B[(j0+j), p], so the microkernel streams one contiguous
                // chunk per k step.
                for p in 0..k {
                    for j in 0..NR_I8 {
                        panel[p * NR_I8 + j] = b[(j0 + j) * k + p];
                    }
                }
                let mut i0 = 0;
                while i0 < m {
                    let iw = MR_I8.min(m - i0);
                    if iw == MR_I8 {
                        microkernel_i8(k, n, &a[i0 * k..], &panel, &mut c[i0 * n + j0..]);
                    } else {
                        for i in i0..m {
                            let arow = &a[i * k..(i + 1) * k];
                            for j in 0..jw {
                                c[i * n + j0 + j] =
                                    dot_i8(arow, &b[(j0 + j) * k..(j0 + j + 1) * k]);
                            }
                        }
                    }
                    i0 += iw;
                }
            } else {
                // Narrow column tail: scalar dots.
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    for j in 0..jw {
                        c[i * n + j0 + j] = dot_i8(arow, &b[(j0 + j) * k..(j0 + j + 1) * k]);
                    }
                }
            }
            j0 += jw;
        }
    })
}

/// `MR×NR` register microtile over a packed B panel: `acc[i][j] += A[i,p]
/// · panel[p][j]` with `p` increasing.
#[inline]
fn microkernel_i8(k: usize, n: usize, a: &[i8], panel: &[i8], c: &mut [i32]) {
    let mut arows: [&[i8]; MR_I8] = [&[]; MR_I8];
    for (r, row) in arows.iter_mut().enumerate() {
        *row = &a[r * k..(r + 1) * k];
    }
    let mut acc = [[0i32; NR_I8]; MR_I8];
    for (p, bchunk) in panel.chunks_exact(NR_I8).enumerate().take(k) {
        let bc: &[i8; NR_I8] = bchunk.try_into().unwrap();
        for (row, acc_row) in arows.iter().zip(acc.iter_mut()) {
            let av = row[p] as i32;
            for (cell, &bv) in acc_row.iter_mut().zip(bc) {
                *cell += av * bv as i32;
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        c[i * n..i * n + NR_I8].copy_from_slice(acc_row);
    }
}

/// Lowers quantized NCHW input to a `(N·Ho·Wo, C_in·k·k)` column matrix
/// (padding positions become zeros). Mirrors the f32 `im2col` exactly so
/// the int8 convolution sees the same patch geometry.
pub fn im2col_i8(
    x: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &ConvSpec,
    cols: &mut Vec<i8>,
) {
    crate::backend::im2col_sweep(x, 0i8, [n, c, h, w], spec, cols);
}

/// Transposed int8 conv lowering for the compiled plan: quantized input
/// → `(C_in·k·k, N·Ho·Wo)` columns ([`crate::backend::im2col_t`]) →
/// channel-major i32 accumulators `acc[co][pos]`, so the fused dequant
/// epilogue streams one contiguous run per (batch, channel). Integer
/// accumulation is exact, so the j-blocked widening-AXPY order below is
/// bit-identical to [`gemm_i8_nt`] on either operand order.
pub fn conv_rows_t_i8(
    qx: &[i8],
    dims: [usize; 4],
    spec: &ConvSpec,
    q: &[i8],
    cols: &mut Vec<i8>,
    acc: &mut Vec<i32>,
) {
    let [n, _, h, w] = dims;
    let (ho, wo) = spec.out_size(h, w);
    let m = n * ho * wo;
    let (co, ck) = (spec.out_channels, spec.patch_len());
    assert_eq!(q.len(), co * ck, "weight length mismatch");
    crate::backend::im2col_t(qx, 0i8, dims, spec, cols);
    acc.clear();
    acc.resize(co * m, 0);
    use crate::backend::{IR_T, JR_T};
    let jm = m - m % JR_T;
    let mut i0 = 0;
    while i0 < co {
        let ir = IR_T.min(co - i0);
        let q_grp = &q[i0 * ck..(i0 + ir) * ck];
        let acc_grp = &mut acc[i0 * m..(i0 + ir) * m];
        let mut j0 = 0;
        while j0 < jm {
            // Register-tiled block: broadcast-A widening multiply against
            // contiguous B rows, so B streams once per channel group
            // instead of once per channel. Full-height groups take the
            // const-height tile (accumulators stay in registers).
            if ir == IR_T {
                tile_tn_i8::<IR_T>(ck, m, q_grp, cols, acc_grp, j0);
            } else {
                tile_tn_i8_partial(ir, ck, m, q_grp, cols, acc_grp, j0);
            }
            j0 += JR_T;
        }
        for ii in 0..ir {
            let qrow = &q_grp[ii * ck..(ii + 1) * ck];
            for j in jm..m {
                let mut s = 0i32;
                for (p, &qv) in qrow.iter().enumerate() {
                    s += qv as i32 * cols[p * m + j] as i32;
                }
                acc_grp[ii * m + j] = s;
            }
        }
        i0 += ir;
    }
}

/// One `IR×JR_T` tile of [`conv_rows_t_i8`]'s accumulation.
#[inline]
fn tile_tn_i8<const IR: usize>(ck: usize, m: usize, q: &[i8], bt: &[i8], c: &mut [i32], j0: usize) {
    use crate::backend::JR_T;
    let mut acc = [[0i32; JR_T]; IR];
    for p in 0..ck {
        let b = &bt[p * m + j0..p * m + j0 + JR_T];
        for ii in 0..IR {
            let av = q[ii * ck + p] as i32;
            for (x, &bv) in acc[ii].iter_mut().zip(b) {
                *x += av * bv as i32;
            }
        }
    }
    for (ii, accr) in acc.iter().enumerate() {
        c[ii * m + j0..ii * m + j0 + JR_T].copy_from_slice(accr);
    }
}

/// Runtime-height tail variant of [`tile_tn_i8`].
fn tile_tn_i8_partial(
    ir: usize,
    ck: usize,
    m: usize,
    q: &[i8],
    bt: &[i8],
    c: &mut [i32],
    j0: usize,
) {
    use crate::backend::{IR_T, JR_T};
    let mut acc = [[0i32; JR_T]; IR_T];
    for p in 0..ck {
        let b = &bt[p * m + j0..p * m + j0 + JR_T];
        for (ii, accr) in acc[..ir].iter_mut().enumerate() {
            let av = q[ii * ck + p] as i32;
            for (x, &bv) in accr.iter_mut().zip(b) {
                *x += av * bv as i32;
            }
        }
    }
    for (ii, accr) in acc[..ir].iter().enumerate() {
        c[ii * m + j0..ii * m + j0 + JR_T].copy_from_slice(accr);
    }
}

// ---------------------------------------------------------------------------
// Quantized convolution and stage chain
// ---------------------------------------------------------------------------

/// A quantized convolution: int8 weights + calibrated activation scale.
///
/// `forward` quantizes the f32 input, lowers with [`im2col_i8`], runs
/// [`gemm_i8_nt`], and dequantizes into an f32 NCHW tensor with the bias
/// added — int8 in the GEMM only, f32 at the stage boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantConv2d {
    /// Per-output-channel symmetric weights, `(C_out, C_in·k·k)`.
    pub weights: QuantWeights,
    /// F32 bias, length `C_out` (added after dequantization).
    pub bias: Vec<f32>,
    /// Convolution geometry.
    pub spec: ConvSpec,
    /// Calibrated symmetric per-tensor input activation scale.
    pub act_scale: f32,
}

impl QuantConv2d {
    /// Quantizes a trained [`Conv2d`] given its calibrated input scale.
    pub fn from_conv(conv: &Conv2d, act_scale: f32) -> Self {
        let spec = conv.spec();
        let weights =
            quantize_per_channel(conv.weight().data(), spec.out_channels, spec.patch_len());
        QuantConv2d { weights, bias: conv.bias().data().to_vec(), spec, act_scale }
    }

    /// Int8 convolution forward over an f32 NCHW input.
    ///
    /// # Panics
    /// Panics if the input is not 4-D with `spec.in_channels` channels.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "QuantConv2d expects NCHW input");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.spec.in_channels, "QuantConv2d channel mismatch");
        let (ho, wo) = self.spec.out_size(h, w);
        let co = self.spec.out_channels;
        let ck = self.spec.patch_len();
        let rows_n = n * ho * wo;

        QX_I8.with(|qx_buf| {
            COLS_I8.with(|cols_buf| {
                ACC_I32.with(|acc_buf| {
                    let mut qx = qx_buf.borrow_mut();
                    let mut cols = cols_buf.borrow_mut();
                    let mut acc = acc_buf.borrow_mut();
                    quantize_activations(x.data(), self.act_scale, &mut qx);
                    im2col_i8(&qx, n, c, h, w, &self.spec, &mut cols);
                    acc.clear();
                    acc.resize(rows_n * co, 0);
                    gemm_i8_nt(rows_n, ck, co, &cols, &self.weights.q, &mut acc);

                    // Dequantize straight into NCHW, fusing the bias add:
                    // per-channel scales hoisted, contiguous plane writes,
                    // strided accumulator reads via step_by (no per-element
                    // bounds checks).
                    let deq: Vec<f32> =
                        self.weights.scales.iter().map(|s| self.act_scale * s).collect();
                    let plane = ho * wo;
                    let mut y = Tensor::zeros(&[n, co, ho, wo]);
                    let yd = y.data_mut();
                    for b in 0..n {
                        let acc_b = &acc[b * plane * co..(b + 1) * plane * co];
                        for ci in 0..co {
                            let (d, bias) = (deq[ci], self.bias[ci]);
                            let out = &mut yd[(b * co + ci) * plane..(b * co + ci + 1) * plane];
                            for (o, &a) in out.iter_mut().zip(acc_b[ci..].iter().step_by(co)) {
                                *o = a as f32 * d + bias;
                            }
                        }
                    }
                    y
                })
            })
        })
    }
}

/// One stage of a quantized pipe. Convolutions run int8; the f32 stages
/// between them are the memory-bound layers where int8 buys nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantStage {
    /// Int8 convolution.
    Conv(QuantConv2d),
    /// Folded batch-norm: per-channel `(scale, shift)` in f32.
    Affine(Vec<f32>, Vec<f32>),
    /// Elementwise `max(x, 0)`.
    ReLU,
    /// Max pooling with the given square kernel (stride = kernel).
    MaxPool(usize),
}

impl QuantStage {
    fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            QuantStage::Conv(conv) => conv.forward(x),
            QuantStage::Affine(scale, shift) => affine_forward(x, scale, shift),
            QuantStage::ReLU => x.map(|v| v.max(0.0)),
            QuantStage::MaxPool(k) => maxpool_forward(x, *k),
        }
    }
}

/// A quantized stage chain: the int8 counterpart of a [`Sequential`]
/// trained network, produced by [`quantize_sequential`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantPipe {
    /// Stages applied in order.
    pub stages: Vec<QuantStage>,
}

impl QuantPipe {
    /// Runs the chain on an f32 NCHW input.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for stage in &self.stages {
            cur = stage.forward(&cur);
        }
        cur
    }
}

/// Why a network could not be quantized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// The chain contains a layer kind the quantizer does not handle.
    UnsupportedLayer(&'static str),
    /// No calibration inputs were supplied.
    NoCalibration,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::UnsupportedLayer(name) => {
                write!(f, "cannot quantize layer `{name}`")
            }
            QuantizeError::NoCalibration => write!(f, "no calibration inputs supplied"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Per-channel affine `y = x·scale[c] + shift[c]` over NCHW (folded BN).
fn affine_forward(x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert_eq!(c, scale.len(), "affine channel mismatch");
    let plane = h * w;
    let mut y = Tensor::zeros(x.shape());
    let xd = x.data();
    let yd = y.data_mut();
    for ci in 0..c {
        let (s, t) = (scale[ci], shift[ci]);
        for b in 0..n {
            let base = (b * c + ci) * plane;
            for (yv, xv) in yd[base..base + plane].iter_mut().zip(&xd[base..base + plane]) {
                *yv = xv * s + t;
            }
        }
    }
    y
}

/// Max pooling with stride = kernel over NCHW (eval semantics of
/// [`crate::layer::MaxPool2d`], truncating odd sizes).
fn maxpool_forward(x: &Tensor, k: usize) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert!(h >= k && w >= k, "input smaller than pooling kernel");
    let (ho, wo) = (h / k, w / k);
    let mut y = Tensor::zeros(&[n, c, ho, wo]);
    let xd = x.data();
    let yd = y.data_mut();
    for plane in 0..n * c {
        let base = plane * h * w;
        for oy in 0..ho {
            let out_row = &mut yd[(plane * ho + oy) * wo..(plane * ho + oy + 1) * wo];
            for (ox, out) in out_row.iter_mut().enumerate() {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    let row = base + (oy * k + ky) * w + ox * k;
                    for &v in &xd[row..row + k] {
                        if v > best {
                            best = v;
                        }
                    }
                }
                *out = best;
            }
        }
    }
    y
}

/// Quantizes a trained evaluation-mode [`Sequential`] into a
/// [`QuantPipe`], calibrating each convolution's activation scale by
/// propagating the calibration set through the float network.
///
/// Returns the pipe and the final f32 activations of each calibration
/// input — downstream consumers (e.g. a detection head) calibrate on
/// those. Supported layers: `Conv2d`, `BatchNorm2d` (folded), `ReLU`,
/// `MaxPool2d`; anything else yields
/// [`QuantizeError::UnsupportedLayer`].
pub fn quantize_sequential(
    seq: &Sequential,
    calib: &[Tensor],
) -> Result<(QuantPipe, Vec<Tensor>), QuantizeError> {
    if calib.is_empty() {
        return Err(QuantizeError::NoCalibration);
    }
    let mut stages = Vec::with_capacity(seq.len());
    let mut acts: Vec<Tensor> = calib.to_vec();
    let mut scratch = Vec::new();
    for layer in seq.layers() {
        if let Some(conv) = layer.as_conv2d() {
            // One scale across the whole calibration set for this input.
            let mut max_abs = 0.0f32;
            for a in &acts {
                max_abs = max_abs.max(a.data().iter().fold(0.0f32, |m, v| m.max(v.abs())));
            }
            let act_scale = if max_abs > 0.0 { max_abs / QMAX } else { 1.0 };
            stages.push(QuantStage::Conv(QuantConv2d::from_conv(conv, act_scale)));
            // Propagate calibration in f32 so later scales reflect the
            // float activations the branches were trained on.
            let backend = crate::backend::active();
            let spec = conv.spec();
            acts = acts
                .iter()
                .map(|a| {
                    backend.conv2d_forward(
                        a,
                        conv.weight(),
                        conv.bias().data(),
                        &spec,
                        &mut scratch,
                    )
                })
                .collect();
        } else if let Some(bn) = layer.as_batchnorm() {
            let (scale, shift) = fold_batchnorm(bn);
            acts = acts.iter().map(|a| affine_forward(a, &scale, &shift)).collect();
            stages.push(QuantStage::Affine(scale, shift));
        } else if layer.name() == "ReLU" {
            acts = acts.iter().map(|a| a.map(|v| v.max(0.0))).collect();
            stages.push(QuantStage::ReLU);
        } else if let Some(pool) = layer.as_maxpool() {
            let k = pool.kernel();
            acts = acts.iter().map(|a| maxpool_forward(a, k)).collect();
            stages.push(QuantStage::MaxPool(k));
        } else {
            return Err(QuantizeError::UnsupportedLayer(layer.name()));
        }
    }
    Ok((QuantPipe { stages }, acts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, MaxPool2d, ReLU};
    use crate::rng::Rng;

    fn naive_gemm_nt_i32(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[j * k + p] as i32;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
        (0..len).map(|_| rng.uniform(-127.0, 128.0).floor() as i8).collect()
    }

    #[test]
    fn gemm_i8_matches_naive_across_shapes() {
        let mut rng = Rng::new(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (8, 16, 8), (9, 7, 17), (16, 9, 8), (13, 27, 11)]
        {
            let a = rand_i8(m * k, &mut rng);
            let b = rand_i8(n * k, &mut rng);
            let mut c = vec![0i32; m * n];
            gemm_i8_nt(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive_gemm_nt_i32(m, k, n, &a, &b), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn per_channel_quantization_bounds_error() {
        let mut rng = Rng::new(3);
        let w: Vec<f32> = (0..4 * 9).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
        let qw = quantize_per_channel(&w, 4, 9);
        for r in 0..4 {
            let s = qw.scales[r];
            for i in 0..9 {
                let deq = qw.q[r * 9 + i] as f32 * s;
                assert!(
                    (deq - w[r * 9 + i]).abs() <= s * 0.5 + 1e-6,
                    "row {r} elem {i}: {deq} vs {}",
                    w[r * 9 + i]
                );
            }
        }
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let qw = quantize_per_channel(&[0.0; 6], 2, 3);
        assert_eq!(qw.scales, vec![1.0, 1.0]);
        assert!(qw.q.iter().all(|&v| v == 0));
    }

    #[test]
    fn quant_conv_tracks_f32_conv() {
        let mut rng = Rng::new(7);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y_f32 = conv.forward(&x, false);
        let qconv = QuantConv2d::from_conv(&conv, calib_scale(x.data()));
        let y_q = qconv.forward(&x);
        assert_eq!(y_q.shape(), y_f32.shape());
        let max_abs = y_f32.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in y_q.data().iter().zip(y_f32.data()) {
            // Two layers of rounding (activations + weights); stay within
            // a few percent of the dynamic range.
            assert!((a - b).abs() <= 0.05 * max_abs + 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_pipe_tracks_f32_sequential() {
        let mut rng = Rng::new(9);
        let mut seq = Sequential::new(vec![
            Box::new(Conv2d::new(2, 8, 3, 1, 1, &mut rng)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
        ]);
        // Settle running stats so eval mode is nontrivial.
        let warm = Tensor::randn(&[4, 2, 8, 8], 1.0, &mut rng);
        for _ in 0..5 {
            let _ = seq.forward(&warm, true);
        }
        let calib: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng)).collect();
        let (pipe, final_acts) = quantize_sequential(&seq, &calib).expect("quantizable");
        assert_eq!(pipe.stages.len(), 4);
        assert_eq!(final_acts.len(), 3);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let y_f32 = seq.forward(&x, false);
        let y_q = pipe.forward(&x);
        assert_eq!(y_q.shape(), y_f32.shape());
        let max_abs = y_f32.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in y_q.data().iter().zip(y_f32.data()) {
            assert!((a - b).abs() <= 0.08 * max_abs + 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn unsupported_layer_is_reported() {
        let mut rng = Rng::new(1);
        let seq = Sequential::new(vec![Box::new(crate::layer::Linear::new(4, 2, &mut rng))]);
        let calib = vec![Tensor::zeros(&[1, 4])];
        match quantize_sequential(&seq, &calib) {
            Err(QuantizeError::UnsupportedLayer(name)) => assert_eq!(name, "Linear"),
            other => panic!("expected UnsupportedLayer, got {other:?}"),
        }
    }

    #[test]
    fn empty_calibration_is_reported() {
        let seq = Sequential::empty();
        assert_eq!(quantize_sequential(&seq, &[]), Err(QuantizeError::NoCalibration));
    }

    #[test]
    fn quant_pipe_serde_roundtrip() {
        let mut rng = Rng::new(4);
        let conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let qconv = QuantConv2d::from_conv(&conv, 0.05);
        let pipe = QuantPipe {
            stages: vec![
                QuantStage::Conv(qconv),
                QuantStage::Affine(vec![1.0, 0.5], vec![0.0, -0.1]),
                QuantStage::ReLU,
                QuantStage::MaxPool(2),
            ],
        };
        let json = serde_json::to_string(&pipe).expect("serialize");
        let back: QuantPipe = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, pipe);
        // Behavioural equality too: the deserialized pipe computes the
        // same outputs.
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        assert_eq!(pipe.forward(&x), back.forward(&x));
    }

    #[test]
    fn int8_forward_is_deterministic() {
        let mut rng = Rng::new(13);
        let conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let qconv = QuantConv2d::from_conv(&conv, 0.02);
        let x = Tensor::randn(&[2, 2, 9, 9], 1.0, &mut rng);
        let y1 = qconv.forward(&x);
        let y2 = qconv.forward(&x);
        assert_eq!(y1, y2);
    }
}
