//! Flatten layer.

use super::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// Flattens `(N, C, H, W)` (or any batched shape) to `(N, F)`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten expects a batched tensor");
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        let n = x.shape()[0];
        let f = x.len() / n.max(1);
        x.reshape(&[n, f])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.in_shape.as_ref().expect("Flatten::backward before forward(train)");
        grad_out.reshape(shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn flattens_and_restores() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let mut f = Flatten::new();
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.data(), y.data());
    }
}
