//! Batch normalization.

use super::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// Per-channel batch normalization over NCHW inputs.
///
/// Training mode normalizes with batch statistics and updates exponential
/// running averages; evaluation mode uses the running averages.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    // Cached values for backward.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Option<Vec<f32>>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cached_xhat: None,
            cached_inv_std: None,
        }
    }

    /// Running mean (for inspection/serialization).
    pub fn running_mean(&self) -> &[f32] {
        self.running_mean.data()
    }

    /// Running variance (for inspection/serialization).
    pub fn running_var(&self) -> &[f32] {
        self.running_var.data()
    }

    /// Per-channel scale γ (for inspection/quantization).
    pub fn gamma(&self) -> &[f32] {
        self.gamma.value.data()
    }

    /// Per-channel shift β (for inspection/quantization).
    pub fn beta(&self) -> &[f32] {
        self.beta.value.data()
    }

    /// The numerical-stability epsilon added to the variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Overwrites the running statistics (used by deserialization).
    ///
    /// # Panics
    /// Panics if lengths do not match the channel count.
    pub fn set_running_stats(&mut self, mean: Vec<f32>, var: Vec<f32>) {
        assert_eq!(mean.len(), self.channels, "running mean length mismatch");
        assert_eq!(var.len(), self.channels, "running var length mismatch");
        self.running_mean = Tensor::from_vec(&[self.channels], mean);
        self.running_var = Tensor::from_vec(&[self.channels], var);
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(x.shape()[1], self.channels, "BatchNorm2d channel mismatch");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let plane = h * w;
        if !train {
            // Evaluation fast path: running statistics only — one fused
            // slice pass per plane, no `xhat` side buffer (it exists only
            // for backward). The arithmetic per element is identical to
            // the training normalization below.
            let mut y = Tensor::zeros(x.shape());
            let xd = x.data();
            let yd = y.data_mut();
            for ci in 0..c {
                let mean = self.running_mean.data()[ci];
                let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
                let g = self.gamma.value.data()[ci];
                let bta = self.beta.value.data()[ci];
                for b in 0..n {
                    let base = (b * c + ci) * plane;
                    for (yv, xv) in yd[base..base + plane].iter_mut().zip(&xd[base..base + plane]) {
                        *yv = g * ((xv - mean) * inv_std) + bta;
                    }
                }
            }
            return y;
        }
        let count = (n * plane) as f32;
        let mut y = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        #[allow(clippy::needless_range_loop)] // ci also strides the NCHW planes below
        for ci in 0..c {
            let (mean, var) = {
                let mut s = 0.0f64;
                for b in 0..n {
                    let base = (b * c + ci) * plane;
                    for i in 0..plane {
                        s += x.data()[base + i] as f64;
                    }
                }
                let mean = (s / count as f64) as f32;
                let mut v = 0.0f64;
                for b in 0..n {
                    let base = (b * c + ci) * plane;
                    for i in 0..plane {
                        let d = x.data()[base + i] - mean;
                        v += (d * d) as f64;
                    }
                }
                let var = (v / count as f64) as f32;
                self.running_mean.data_mut()[ci] =
                    (1.0 - self.momentum) * self.running_mean.data()[ci] + self.momentum * mean;
                self.running_var.data_mut()[ci] =
                    (1.0 - self.momentum) * self.running_var.data()[ci] + self.momentum * var;
                (mean, var)
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let bta = self.beta.value.data()[ci];
            for b in 0..n {
                let base = (b * c + ci) * plane;
                for i in 0..plane {
                    let xh = (x.data()[base + i] - mean) * inv_std;
                    xhat.data_mut()[base + i] = xh;
                    y.data_mut()[base + i] = g * xh + bta;
                }
            }
        }
        self.cached_xhat = Some(xhat);
        self.cached_inv_std = Some(inv_stds);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self.cached_xhat.as_ref().expect("BatchNorm2d::backward before forward(train)");
        let inv_std =
            self.cached_inv_std.as_ref().expect("BatchNorm2d::backward before forward(train)");
        let [n, c, h, w] =
            [grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2], grad_out.shape()[3]];
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut dx = Tensor::zeros(grad_out.shape());
        #[allow(clippy::needless_range_loop)] // ci also strides the NCHW planes below
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            // Reductions: sum(dy) and sum(dy * xhat).
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..n {
                let base = (b * c + ci) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[base + i];
                    sum_dy += dy as f64;
                    sum_dy_xhat += (dy * xhat.data()[base + i]) as f64;
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat as f32;
            self.beta.grad.data_mut()[ci] += sum_dy as f32;
            let mean_dy = sum_dy as f32 / count;
            let mean_dy_xhat = sum_dy_xhat as f32 / count;
            let scale = g * inv_std[ci];
            for b in 0..n {
                let base = (b * c + ci) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[base + i];
                    let xh = xhat.data()[base + i];
                    dx.data_mut()[base + i] = scale * (dy - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn as_batchnorm(&self) -> Option<&BatchNorm2d> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;
    use crate::rng::Rng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng::new(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per channel, output should have ~zero mean and ~unit variance.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for hy in 0..3 {
                    for wx in 0..3 {
                        vals.push(y.get4(b, ci, hy, wx));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_running_stats(vec![2.0], vec![4.0]);
        let x = Tensor::from_vec(&[1, 1, 1, 2], vec![2.0, 4.0]);
        let y = bn.forward(&x, false);
        // (2-2)/2 = 0, (4-2)/2 = 1 (eps makes it slightly less).
        assert!(y.data()[0].abs() < 1e-3);
        assert!((y.data()[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn running_stats_move_toward_batch() {
        let mut rng = Rng::new(2);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[8, 1, 4, 4], 1.0, &mut rng).map(|v| v + 5.0);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.2);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[3, 2, 2, 2], 1.0, &mut rng);
        // BatchNorm couples all inputs in a channel; finite differences still
        // apply because gradcheck perturbs one element at a time.
        gradcheck(&mut bn, &x, 1e-2, 5e-2);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let _ = bn.forward(&x, false);
    }
}
