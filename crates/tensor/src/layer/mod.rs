//! Neural-network layers with hand-written backpropagation.
//!
//! Layers follow a simple contract: [`Layer::forward`] caches whatever the
//! backward pass needs, [`Layer::backward`] consumes the gradient with
//! respect to the output and returns the gradient with respect to the input
//! while *accumulating* parameter gradients, and [`Layer::visit_params`]
//! exposes parameters to the optimizer and serializer.

mod activation;
mod attention;
mod conv;
mod flatten;
mod linear;
mod norm;
mod pool;
mod sequential;

pub(crate) use activation::sigmoid as sigmoid_scalar;
pub use activation::{LeakyReLU, ReLU, Sigmoid};
pub use attention::SelfAttention2d;
pub use conv::Conv2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::MaxPool2d;
pub use sequential::Sequential;

use crate::param::Param;
use crate::tensor::Tensor;

/// A differentiable network module.
///
/// Implementations cache forward-pass activations internally, so a layer
/// instance must not be shared across concurrent forward passes. `backward`
/// must be called after a `forward` with `train = true`.
pub trait Layer: Send {
    /// Computes the layer output. `train` enables training-time behaviour
    /// (batch-norm batch statistics, cached activations).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (gradient w.r.t. the forward output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the forward input.
    ///
    /// # Panics
    /// Panics if called before a training-mode [`Layer::forward`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers and
    /// serialization). The visit order must be deterministic.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every non-trainable state buffer (batch-norm running
    /// statistics). The visit order must be deterministic. Layers without
    /// buffers use the empty default.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Downcast hook for the post-training quantizer: layers that are a
    /// 2-D convolution return themselves so their weights can be
    /// re-expressed in int8. Everything else keeps the `None` default.
    fn as_conv2d(&self) -> Option<&Conv2d> {
        None
    }

    /// Downcast hook for the quantizer: batch-norm layers return
    /// themselves so their eval-mode affine can be folded into an
    /// explicit per-channel scale/shift stage.
    fn as_batchnorm(&self) -> Option<&BatchNorm2d> {
        None
    }

    /// Downcast hook for the quantizer: max-pool layers return themselves
    /// so the pooling geometry can be mirrored into the int8 pipe.
    fn as_maxpool(&self) -> Option<&MaxPool2d> {
        None
    }

    /// Downcast hook for the graph compiler: fully-connected layers
    /// return themselves so a trailing ReLU can be fused into the GEMM
    /// write-back epilogue.
    fn as_linear(&self) -> Option<&Linear> {
        None
    }

    /// Clears accumulated gradients on all parameters.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Scalar objective used by gradient checks: 0.5 * ||y||².
    fn objective(y: &Tensor) -> f32 {
        0.5 * y.norm_sq()
    }

    /// Checks `layer`'s input and parameter gradients against central finite
    /// differences on the objective 0.5·||forward(x)||².
    pub fn gradcheck(layer: &mut dyn Layer, x: &Tensor, eps: f32, tol: f32) {
        // Analytic gradients.
        let y = layer.forward(x, true);
        let grad_out = y.clone(); // d(0.5||y||²)/dy = y
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out);

        // Input gradient check.
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let fp = objective(&layer.forward(&xp, true));
            xp.data_mut()[i] = orig - eps;
            let fm = objective(&layer.forward(&xp, true));
            xp.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numeric {num}, analytic {ana}"
            );
        }

        // Parameter gradient check. Re-run analytic pass so caches match x.
        let y = layer.forward(x, true);
        layer.zero_grad();
        let _ = layer.backward(&y.clone());
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.data().to_vec()));

        let mut param_idx = 0;
        loop {
            // Count params once.
            let mut count = 0;
            layer.visit_params(&mut |_| count += 1);
            if param_idx >= count {
                break;
            }
            let mut len = 0;
            let mut k = 0;
            layer.visit_params(&mut |p| {
                if k == param_idx {
                    len = p.len();
                }
                k += 1;
            });
            #[allow(clippy::needless_range_loop)] // i also drives visit_params probes
            for i in 0..len {
                let mut orig = 0.0;
                let mut k = 0;
                layer.visit_params(&mut |p| {
                    if k == param_idx {
                        orig = p.value.data()[i];
                        p.value.data_mut()[i] = orig + eps;
                    }
                    k += 1;
                });
                let fp = objective(&layer.forward(x, true));
                let mut k = 0;
                layer.visit_params(&mut |p| {
                    if k == param_idx {
                        p.value.data_mut()[i] = orig - eps;
                    }
                    k += 1;
                });
                let fm = objective(&layer.forward(x, true));
                let mut k = 0;
                layer.visit_params(&mut |p| {
                    if k == param_idx {
                        p.value.data_mut()[i] = orig;
                    }
                    k += 1;
                });
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic[param_idx][i];
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "param {param_idx} grad mismatch at {i}: numeric {num}, analytic {ana}"
                );
            }
            param_idx += 1;
        }
    }
}
