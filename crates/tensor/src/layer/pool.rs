//! Spatial pooling layers.

use super::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// Max pooling with square kernel and equal stride over NCHW inputs.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    argmax: Option<Vec<usize>>,
    in_shape: Option<[usize; 4]>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `kernel × kernel` windows and stride
    /// equal to the kernel size.
    ///
    /// # Panics
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        MaxPool2d { kernel, argmax: None, in_shape: None }
    }

    /// The pooling kernel side (stride equals the kernel).
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "MaxPool2d expects NCHW input");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let k = self.kernel;
        assert!(h >= k && w >= k, "input smaller than pooling kernel");
        let (ho, wo) = (h / k, w / k);
        let mut y = Tensor::zeros(&[n, c, ho, wo]);
        let xd = x.data();
        let yd = y.data_mut();
        if !train {
            // Evaluation fast path: no argmax bookkeeping (it exists only
            // for backward routing).
            for plane in 0..n * c {
                let base = plane * h * w;
                for oy in 0..ho {
                    let out_row = &mut yd[(plane * ho + oy) * wo..(plane * ho + oy + 1) * wo];
                    for (ox, out) in out_row.iter_mut().enumerate() {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..k {
                            let row = base + (oy * k + ky) * w + ox * k;
                            for &v in &xd[row..row + k] {
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        *out = best;
                    }
                }
            }
            return y;
        }
        let mut argmax = vec![0usize; n * c * ho * wo];
        for b in 0..n {
            for ci in 0..c {
                let base = (b * c + ci) * h * w;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let i = base + (oy * k + ky) * w + ox * k + kx;
                                if xd[i] > best {
                                    best = xd[i];
                                    best_i = i;
                                }
                            }
                        }
                        let o = ((b * c + ci) * ho + oy) * wo + ox;
                        yd[o] = best;
                        argmax[o] = best_i;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.in_shape = Some([n, c, h, w]);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("MaxPool2d::backward before forward(train)");
        let [n, c, h, w] = self.in_shape.expect("MaxPool2d::backward before forward(train)");
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let dxd = dx.data_mut();
        for (o, &src) in argmax.iter().enumerate() {
            dxd[src] += grad_out.data()[o];
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn as_maxpool(&self) -> Option<&MaxPool2d> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]);
        let dx = p.backward(&g);
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "smaller than pooling kernel")]
    fn too_small_input_panics() {
        let mut p = MaxPool2d::new(4);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = p.forward(&x, false);
    }
}
