//! Layer composition.

use super::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// A chain of layers applied in order.
///
/// # Example
///
/// ```
/// use ecofusion_tensor::{layer::{Layer, Linear, ReLU, Sequential}, rng::Rng, Tensor};
/// let mut rng = Rng::new(0);
/// let mut net = Sequential::new(vec![
///     Box::new(Linear::new(3, 8, &mut rng)),
///     Box::new(ReLU::new()),
///     Box::new(Linear::new(8, 2, &mut rng)),
/// ]);
/// let y = net.forward(&Tensor::zeros(&[1, 3]), false);
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential{names:?}")
    }
}

impl Sequential {
    /// Creates a sequential container from layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Read-only view of the composed layers (used by the post-training
    /// quantizer to walk the chain).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;
    use crate::layer::{Linear, ReLU};
    use crate::rng::Rng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::empty();
        let x = Tensor::from_vec(&[2], vec![1.0, -1.0]);
        assert_eq!(s.forward(&x, false), x);
        assert!(s.is_empty());
    }

    #[test]
    fn composes_layers_in_order() {
        let mut rng = Rng::new(1);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(2, 4, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(4, 3, &mut rng)),
        ]);
        assert_eq!(s.len(), 3);
        let y = s.forward(&Tensor::zeros(&[5, 2]), false);
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn gradcheck_through_stack() {
        let mut rng = Rng::new(2);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(5, 2, &mut rng)),
        ]);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        gradcheck(&mut s, &x, 1e-2, 3e-2);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = Rng::new(3);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(2, 3, &mut rng)),
            Box::new(Linear::new(3, 4, &mut rng)),
        ]);
        assert_eq!(s.param_count(), (2 * 3 + 3) + (3 * 4 + 4));
    }
}
