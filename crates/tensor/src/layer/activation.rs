//! Element-wise activation layers.

use super::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("ReLU::backward before forward(train)");
        assert_eq!(mask.len(), grad_out.len(), "ReLU grad shape mismatch");
        let data =
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Leaky rectified linear unit with fixed negative slope.
#[derive(Debug, Clone)]
pub struct LeakyReLU {
    slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyReLU {
    /// Creates a LeakyReLU with the given negative-side slope.
    pub fn new(slope: f32) -> Self {
        LeakyReLU { slope, mask: None }
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        let s = self.slope;
        x.map(|v| if v > 0.0 { v } else { s * v })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("LeakyReLU::backward before forward(train)");
        let s = self.slope;
        let data =
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { s * g }).collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "LeakyReLU"
    }
}

/// Logistic sigmoid.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically-stable scalar sigmoid.
pub(crate) fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(sigmoid);
        if train {
            self.cached_out = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_out.as_ref().expect("Sigmoid::backward before forward(train)");
        let data = grad_out.data().iter().zip(y.data()).map(|(&g, &o)| g * o * (1.0 - o)).collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;
    use crate::rng::Rng;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_gradcheck() {
        let mut rng = Rng::new(1);
        let mut r = ReLU::new();
        // Keep values away from the kink for finite differences.
        let x = Tensor::from_vec(&[5], vec![-2.0, -1.0, 1.0, 2.0, 3.0]);
        gradcheck(&mut r, &x, 1e-3, 1e-2);
        let _ = &mut rng;
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut r = LeakyReLU::new(0.1);
        let x = Tensor::from_vec(&[2], vec![-10.0, 10.0]);
        let y = r.forward(&x, false);
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_gradcheck() {
        let mut r = LeakyReLU::new(0.2);
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 2.0]);
        gradcheck(&mut r, &x, 1e-3, 1e-2);
    }

    #[test]
    fn sigmoid_known_values() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[3], vec![0.0, 100.0, -100.0]);
        let y = s.forward(&x, false);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!(y.data()[2].abs() < 1e-6);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut rng = Rng::new(2);
        let mut s = Sigmoid::new();
        let x = Tensor::randn(&[6], 1.0, &mut rng);
        gradcheck(&mut s, &x, 1e-3, 1e-2);
    }
}
