//! 2-D convolution via im2col.

use super::Layer;
use crate::init;
use crate::param::Param;
use crate::rng::Rng;
use crate::tensor::Tensor;

/// 2-D convolution over NCHW inputs.
///
/// Weight layout is `(C_out, C_in·kh·kw)`; the forward pass lowers the input
/// to column matrix form (im2col) and performs a single matmul, which is the
/// standard CPU implementation strategy.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_cols: Option<Tensor>,
    cached_in_shape: Option<[usize; 4]>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Panics
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(init::kaiming_normal(&[out_channels, fan_in], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        Conv2d {
            weight,
            bias,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_cols: None,
            cached_in_shape: None,
        }
    }

    /// Output spatial size for a given input size.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ho = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let wo = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (ho, wo)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Lowers `x` to a `(N·Ho·Wo, C_in·k·k)` column matrix.
    fn im2col(&self, x: &Tensor) -> Tensor {
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let (ho, wo) = self.out_size(h, w);
        let k = self.kernel;
        let cols_w = c * k * k;
        let mut cols = Tensor::zeros(&[n * ho * wo, cols_w]);
        let cdata = cols.data_mut();
        let xdata = x.data();
        for b in 0..n {
            for oy in 0..ho {
                let iy0 = (oy * self.stride) as isize - self.padding as isize;
                for ox in 0..wo {
                    let ix0 = (ox * self.stride) as isize - self.padding as isize;
                    let row = ((b * ho + oy) * wo + ox) * cols_w;
                    for ci in 0..c {
                        let ch_base = (b * c + ci) * h * w;
                        let col_base = row + ci * k * k;
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src_row = ch_base + iy as usize * w;
                            let dst_row = col_base + ky * k;
                            for kx in 0..k {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                cdata[dst_row + kx] = xdata[src_row + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    /// Scatters column-matrix gradients back to input layout (inverse of
    /// [`Conv2d::im2col`], accumulating where patches overlap).
    fn col2im(&self, cols_grad: &Tensor, in_shape: [usize; 4]) -> Tensor {
        let [n, c, h, w] = in_shape;
        let (ho, wo) = self.out_size(h, w);
        let k = self.kernel;
        let cols_w = c * k * k;
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let dxd = dx.data_mut();
        let cd = cols_grad.data();
        for b in 0..n {
            for oy in 0..ho {
                let iy0 = (oy * self.stride) as isize - self.padding as isize;
                for ox in 0..wo {
                    let ix0 = (ox * self.stride) as isize - self.padding as isize;
                    let row = ((b * ho + oy) * wo + ox) * cols_w;
                    for ci in 0..c {
                        let ch_base = (b * c + ci) * h * w;
                        let col_base = row + ci * k * k;
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_row = ch_base + iy as usize * w;
                            let src_row = col_base + ky * k;
                            for kx in 0..k {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                dxd[dst_row + ix as usize] += cd[src_row + kx];
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "Conv2d expects NCHW input");
        assert_eq!(x.shape()[1], self.in_channels, "Conv2d channel mismatch");
        let [n, _, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let (ho, wo) = self.out_size(h, w);
        let cols = self.im2col(x); // (N·Ho·Wo, Cin·k·k)
        let rows = cols.matmul_nt(&self.weight.value); // (N·Ho·Wo, Cout)
        // Rearrange rows -> NCHW and add bias.
        let mut y = Tensor::zeros(&[n, self.out_channels, ho, wo]);
        let yd = y.data_mut();
        let rd = rows.data();
        let bias = self.bias.value.data();
        for b in 0..n {
            for oy in 0..ho {
                for ox in 0..wo {
                    let r = ((b * ho + oy) * wo + ox) * self.out_channels;
                    for co in 0..self.out_channels {
                        yd[((b * self.out_channels + co) * ho + oy) * wo + ox] =
                            rd[r + co] + bias[co];
                    }
                }
            }
        }
        if train {
            self.cached_cols = Some(cols);
            self.cached_in_shape = Some([n, self.in_channels, h, w]);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("Conv2d::backward before forward(train)");
        let in_shape = self.cached_in_shape.expect("Conv2d::backward before forward(train)");
        let [n, _, h, w] = in_shape;
        let (ho, wo) = self.out_size(h, w);
        // Rearrange grad_out NCHW -> row layout (N·Ho·Wo, Cout).
        let mut grows = Tensor::zeros(&[n * ho * wo, self.out_channels]);
        {
            let gd = grows.data_mut();
            let od = grad_out.data();
            for b in 0..n {
                for co in 0..self.out_channels {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            gd[((b * ho + oy) * wo + ox) * self.out_channels + co] =
                                od[((b * self.out_channels + co) * ho + oy) * wo + ox];
                        }
                    }
                }
            }
        }
        // dW = growsᵀ × cols.
        let dw = grows.matmul_tn(cols);
        self.weight.grad.add_assign(&dw);
        // db = column sums of grows.
        for j in 0..self.out_channels {
            let mut s = 0.0;
            for i in 0..n * ho * wo {
                s += grows.get2(i, j);
            }
            self.bias.grad.data_mut()[j] += s;
        }
        // dcols = grows × W.
        let dcols = grows.matmul(&self.weight.value);
        self.col2im(&dcols, in_shape)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = Rng::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        // Dirac kernel.
        let mut w = Tensor::zeros(&[1, 9]);
        w.data_mut()[4] = 1.0;
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn output_shape_stride_two() {
        let mut rng = Rng::new(1);
        let mut conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[3, 2, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[3, 4, 4, 4]);
    }

    #[test]
    fn bias_applied_everywhere() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::zeros(&[2, 1]);
        conv.bias.value = Tensor::from_vec(&[2], vec![1.5, -2.0]);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y = conv.forward(&x, false);
        for i in 0..4 {
            assert_eq!(y.data()[i], 1.5);
            assert_eq!(y.data()[4 + i], -2.0);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        gradcheck(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    fn gradients_match_finite_differences_strided() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 1, 5, 5], 1.0, &mut rng);
        gradcheck(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let mut rng = Rng::new(5);
        let mut conv = Conv2d::new(3, 2, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let _ = conv.forward(&x, false);
    }
}
