//! 2-D convolution, dispatched through the compute backend.

use super::Layer;
use crate::backend::{self, ConvSpec};
use crate::init;
use crate::param::Param;
use crate::rng::Rng;
use crate::tensor::Tensor;

/// 2-D convolution over NCHW inputs.
///
/// Weight layout is `(C_out, C_in·kh·kw)`. The actual kernel runs on the
/// active [`crate::backend::Backend`]: the blocked backend lowers the
/// input to column-matrix form (im2col) and performs one GEMM — the
/// standard CPU strategy — while the reference backend convolves directly
/// from the definition. The layer owns a scratch buffer the backend reuses
/// across calls, so steady-state inference does not allocate for the
/// lowering.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    scratch: Vec<f32>,
    /// Bumped on every forward; lets `backward` prove the scratch buffer
    /// still holds the lowering of the cached training input.
    scratch_epoch: u64,
    cached_epoch: Option<u64>,
    cached_backend: Option<&'static str>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Panics
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(init::kaiming_normal(&[out_channels, fan_in], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        Conv2d {
            weight,
            bias,
            spec: ConvSpec { in_channels, out_channels, kernel, stride, padding },
            cached_input: None,
            scratch: Vec::new(),
            scratch_epoch: 0,
            cached_epoch: None,
            cached_backend: None,
        }
    }

    /// Output spatial size for a given input size.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        self.spec.out_size(h, w)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.spec.out_channels
    }

    /// The convolution geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// The weight tensor, shape `(C_out, C_in·k·k)` (read-only view for
    /// serialization and quantization).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias tensor, shape `(C_out)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "Conv2d expects NCHW input");
        assert_eq!(x.shape()[1], self.spec.in_channels, "Conv2d channel mismatch");
        let backend = backend::active();
        let y = backend.conv2d_forward(
            x,
            &self.weight.value,
            self.bias.value.data(),
            &self.spec,
            &mut self.scratch,
        );
        self.scratch_epoch += 1;
        if train {
            self.cached_input = Some(x.clone());
            self.cached_epoch = Some(self.scratch_epoch);
            self.cached_backend = Some(backend.name());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.take().expect("Conv2d::backward before forward(train)");
        let backend = backend::active();
        // If no forward ran since the training forward (the common
        // train-step sequence) and the backend is unchanged, the scratch
        // buffer still holds this input's im2col lowering and the backend
        // may skip recomputing it.
        let cols_valid = self.cached_epoch == Some(self.scratch_epoch)
            && self.cached_backend == Some(backend.name());
        let grads = backend.conv2d_backward(
            &x,
            &self.weight.value,
            grad_out,
            &self.spec,
            &mut self.scratch,
            cols_valid,
        );
        self.cached_input = Some(x);
        self.weight.grad.add_assign(&grads.dw);
        self.bias.grad.add_assign(&grads.db);
        grads.dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn as_conv2d(&self) -> Option<&Conv2d> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = Rng::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        // Dirac kernel.
        let mut w = Tensor::zeros(&[1, 9]);
        w.data_mut()[4] = 1.0;
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn output_shape_stride_two() {
        let mut rng = Rng::new(1);
        let mut conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[3, 2, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[3, 4, 4, 4]);
    }

    #[test]
    fn bias_applied_everywhere() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::zeros(&[2, 1]);
        conv.bias.value = Tensor::from_vec(&[2], vec![1.5, -2.0]);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y = conv.forward(&x, false);
        for i in 0..4 {
            assert_eq!(y.data()[i], 1.5);
            assert_eq!(y.data()[4 + i], -2.0);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        gradcheck(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    fn gradients_match_finite_differences_strided() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 1, 5, 5], 1.0, &mut rng);
        gradcheck(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let mut rng = Rng::new(5);
        let mut conv = Conv2d::new(3, 2, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let _ = conv.forward(&x, false);
    }

    #[test]
    fn scratch_reused_across_eval_calls() {
        // Pin the backend instance: the global selection is process-wide
        // mutable state another test may be toggling concurrently.
        let backend = crate::backend::Blocked;
        let mut rng = Rng::new(6);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let mut scratch = Vec::new();
        let _ = crate::backend::Backend::conv2d_forward(
            &backend,
            &x,
            &conv.weight.value,
            conv.bias.value.data(),
            &conv.spec,
            &mut scratch,
        );
        let cap = scratch.capacity();
        assert!(cap > 0);
        for _ in 0..3 {
            let _ = crate::backend::Backend::conv2d_forward(
                &backend,
                &x,
                &conv.weight.value,
                conv.bias.value.data(),
                &conv.spec,
                &mut scratch,
            );
        }
        // Steady-state eval must not regrow the lowering buffer.
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn train_step_reuses_forward_lowering() {
        // backward immediately after forward(train) must take the
        // cols_valid fast path and still produce the true gradient (the
        // gradcheck above covers correctness; this guards the epoch
        // bookkeeping against regressions that would silently recompute).
        let mut rng = Rng::new(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(conv.cached_epoch, Some(conv.scratch_epoch));
        let _ = conv.backward(&y);
        // An eval forward invalidates the cached lowering for a later
        // backward.
        let y2 = conv.forward(&x, true);
        let _ = conv.forward(&x, false);
        assert_ne!(conv.cached_epoch, Some(conv.scratch_epoch));
        let _ = conv.backward(&y2); // falls back to recompute, still runs
    }
}
