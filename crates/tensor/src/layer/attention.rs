//! Spatial self-attention.

use super::Layer;
use crate::init;
use crate::param::Param;
use crate::rng::Rng;
use crate::tensor::Tensor;

/// Single-head scaled dot-product self-attention over the spatial positions
/// of an NCHW feature map, with a residual connection:
///
/// ```text
/// tokens X ∈ R^{T×C},  T = H·W
/// A = softmax(X Wq (X Wk)ᵀ / √C)
/// out = X + (A · X Wv) Wo
/// ```
///
/// This is the layer the paper adds to the Deep gate to obtain the
/// Attention gate (§4.2.3).
#[derive(Debug, Clone)]
pub struct SelfAttention2d {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    channels: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    shape: [usize; 4],
    /// Per-sample token matrices and intermediates.
    xs: Vec<Tensor>,
    qs: Vec<Tensor>,
    ks: Vec<Tensor>,
    vs: Vec<Tensor>,
    attn: Vec<Tensor>,
    zs: Vec<Tensor>,
}

impl SelfAttention2d {
    /// Creates an attention layer over `channels`-dimensional tokens.
    pub fn new(channels: usize, rng: &mut Rng) -> Self {
        let mk = |rng: &mut Rng| {
            Param::new(init::xavier_uniform(&[channels, channels], channels, channels, rng))
        };
        SelfAttention2d {
            wq: mk(rng),
            wk: mk(rng),
            wv: mk(rng),
            wo: mk(rng),
            channels,
            cache: None,
        }
    }

    /// Extracts the `(T, C)` token matrix for sample `b`.
    fn tokens(x: &Tensor, b: usize) -> Tensor {
        let [_, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let t = h * w;
        let mut m = Tensor::zeros(&[t, c]);
        let md = m.data_mut();
        for ci in 0..c {
            let src = &x.data()[(b * c + ci) * t..(b * c + ci + 1) * t];
            for (i, &v) in src.iter().enumerate() {
                md[i * c + ci] = v;
            }
        }
        m
    }

    /// Writes a `(T, C)` token matrix back into NCHW layout at sample `b`.
    fn untokens(m: &Tensor, out: &mut Tensor, b: usize) {
        let c = m.shape()[1];
        let t = m.shape()[0];
        let md = m.data();
        let od = out.data_mut();
        for ci in 0..c {
            let dst = &mut od[(b * c + ci) * t..(b * c + ci + 1) * t];
            for (i, v) in dst.iter_mut().enumerate() {
                *v = md[i * c + ci];
            }
        }
    }
}

impl Layer for SelfAttention2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "SelfAttention2d expects NCHW input");
        assert_eq!(x.shape()[1], self.channels, "SelfAttention2d channel mismatch");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let scale = 1.0 / (c as f32).sqrt();
        let mut out = Tensor::zeros(x.shape());
        let mut cache = AttnCache {
            shape: [n, c, h, w],
            xs: Vec::new(),
            qs: Vec::new(),
            ks: Vec::new(),
            vs: Vec::new(),
            attn: Vec::new(),
            zs: Vec::new(),
        };
        for b in 0..n {
            let xt = Self::tokens(x, b); // (T, C)
            let q = xt.matmul(&self.wq.value);
            let k = xt.matmul(&self.wk.value);
            let v = xt.matmul(&self.wv.value);
            let mut s = q.matmul_nt(&k); // (T, T)
            s.scale(scale);
            let a = s.softmax_rows();
            let z = a.matmul(&v); // (T, C)
            let o = z.matmul(&self.wo.value); // (T, C)
            let res = xt.add(&o);
            Self::untokens(&res, &mut out, b);
            if train {
                cache.xs.push(xt);
                cache.qs.push(q);
                cache.ks.push(k);
                cache.vs.push(v);
                cache.attn.push(a);
                cache.zs.push(z);
            }
        }
        if train {
            self.cache = Some(cache);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("SelfAttention2d::backward before forward(train)");
        let [n, c, _h, _w] = cache.shape;
        let scale = 1.0 / (c as f32).sqrt();
        let mut dx_all = Tensor::zeros(grad_out.shape());
        // Accumulate weight grads over the batch.
        let mut dwq = Tensor::zeros(&[c, c]);
        let mut dwk = Tensor::zeros(&[c, c]);
        let mut dwv = Tensor::zeros(&[c, c]);
        let mut dwo = Tensor::zeros(&[c, c]);
        for b in 0..n {
            let dout = Self::tokens(grad_out, b); // (T, C), gradient of residual output
            let xt = &cache.xs[b];
            let q = &cache.qs[b];
            let k = &cache.ks[b];
            let v = &cache.vs[b];
            let a = &cache.attn[b];
            let z = &cache.zs[b];
            // out = x + z·Wo  =>  dz = dout·Woᵀ, dWo += zᵀ·dout, dx gets dout.
            let dz = dout.matmul_nt(&self.wo.value);
            dwo.add_assign(&z.matmul_tn(&dout));
            // z = a·v  =>  da = dz·vᵀ, dv = aᵀ·dz.
            let da = dz.matmul_nt(v);
            let dv = a.matmul_tn(&dz);
            // a = softmax(s): ds_ij = a_ij * (da_ij - Σ_k da_ik a_ik).
            let t = a.shape()[0];
            let mut ds = Tensor::zeros(&[t, t]);
            for i in 0..t {
                let mut dot = 0.0;
                for j in 0..t {
                    dot += da.get2(i, j) * a.get2(i, j);
                }
                for j in 0..t {
                    ds.set2(i, j, a.get2(i, j) * (da.get2(i, j) - dot));
                }
            }
            ds.scale(scale);
            // s = q·kᵀ  =>  dq = ds·k, dk = dsᵀ·q.
            let dq = ds.matmul(k);
            let dk = ds.matmul_tn(q); // dsᵀ·q, shape (T, C)
                                      // Projections: q = x·Wq etc.
            dwq.add_assign(&xt.matmul_tn(&dq));
            dwk.add_assign(&xt.matmul_tn(&dk));
            dwv.add_assign(&xt.matmul_tn(&dv));
            let mut dxt = dout.clone(); // residual path
            dxt.add_assign(&dq.matmul_nt(&self.wq.value));
            dxt.add_assign(&dk.matmul_nt(&self.wk.value));
            dxt.add_assign(&dv.matmul_nt(&self.wv.value));
            Self::untokens(&dxt, &mut dx_all, b);
        }
        self.wq.grad.add_assign(&dwq);
        self.wk.grad.add_assign(&dwk);
        self.wv.grad.add_assign(&dwv);
        self.wo.grad.add_assign(&dwo);
        dx_all
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }

    fn name(&self) -> &'static str {
        "SelfAttention2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = Rng::new(1);
        let mut attn = SelfAttention2d::new(4, &mut rng);
        let x = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        let y = attn.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn zero_weights_reduce_to_identity() {
        let mut rng = Rng::new(2);
        let mut attn = SelfAttention2d::new(3, &mut rng);
        attn.wo.value = Tensor::zeros(&[3, 3]);
        let x = Tensor::randn(&[1, 3, 2, 2], 1.0, &mut rng);
        let y = attn.forward(&x, false);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut attn = SelfAttention2d::new(2, &mut rng);
        let x = Tensor::randn(&[1, 2, 2, 2], 0.5, &mut rng);
        gradcheck(&mut attn, &x, 1e-2, 5e-2);
    }

    #[test]
    fn tokens_roundtrip() {
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[2, 3, 2, 2], 1.0, &mut rng);
        let t1 = SelfAttention2d::tokens(&x, 1);
        let mut back = Tensor::zeros(x.shape());
        SelfAttention2d::untokens(&t1, &mut back, 1);
        for ci in 0..3 {
            for h in 0..2 {
                for w in 0..2 {
                    assert_eq!(back.get4(1, ci, h, w), x.get4(1, ci, h, w));
                }
            }
        }
    }
}
