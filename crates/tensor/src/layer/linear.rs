//! Fully-connected layer.

use super::Layer;
use crate::init;
use crate::param::Param;
use crate::rng::Rng;
use crate::tensor::Tensor;

/// `y = x·Wᵀ + b` over 2-D inputs `(N, in_features)`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param, // (out, in)
    bias: Param,   // (out)
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        let weight =
            Param::new(init::kaiming_normal(&[out_features, in_features], in_features, rng));
        let bias = Param::new(Tensor::zeros(&[out_features]));
        Linear { weight, bias, in_features, out_features, cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight tensor, shape `(out, in)` (read-only view for the
    /// graph compiler).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias tensor, shape `(out)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects (N, F) input");
        assert_eq!(x.shape()[1], self.in_features, "Linear input width mismatch");
        let mut y = x.matmul_nt(&self.weight.value); // (N, out)
        let bias = self.bias.value.data();
        for row in y.data_mut().chunks_exact_mut(self.out_features) {
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("Linear::backward before forward(train)");
        // dW (out,in) = grad_outᵀ (out,N) × x (N,in)
        let dw = grad_out.matmul_tn(x);
        self.weight.grad.add_assign(&dw);
        // db = column sums of grad_out
        let (n, o) = (grad_out.shape()[0], grad_out.shape()[1]);
        for j in 0..o {
            let mut s = 0.0;
            for i in 0..n {
                s += grad_out.get2(i, j);
            }
            self.bias.grad.data_mut()[j] += s;
        }
        // dx (N,in) = grad_out (N,out) × W (out,in)
        grad_out.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn as_linear(&self) -> Option<&Linear> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::gradcheck;

    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights.
        l.weight.value = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        l.bias.value = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(1);
        let mut l = Linear::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        gradcheck(&mut l, &x, 1e-2, 2e-2);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::new(2);
        let mut l = Linear::new(5, 7, &mut rng);
        assert_eq!(l.param_count(), 5 * 7 + 7);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let mut rng = Rng::new(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::zeros(&[1, 4]);
        let _ = l.forward(&x, false);
    }
}
