//! Fused-operator graph compiler for the inference path.
//!
//! A one-time lowering pass walks a [`Sequential`] stack (or a
//! [`QuantPipe`]) and emits a [`CompiledPlan`] of fused steps:
//!
//! * `Conv2d → BatchNorm2d → ReLU` collapses to **one** im2col + GEMM
//!   whose write-back epilogue applies the bias, the batch-norm eval
//!   affine, and the ReLU clamp per element — no intermediate tensors.
//! * `Linear → ReLU` fuses the same way (bias + clamp in the GEMM
//!   write-back).
//! * `MaxPool2d` becomes a plan step over the arena; `Flatten` becomes
//!   pure shape bookkeeping (no copy).
//! * Quantized convolutions get a fused dequant + folded-BN + ReLU
//!   epilogue applied directly to the i32 accumulators, removing the
//!   stage-boundary dequant round-trips of the eager [`QuantPipe`].
//!
//! # Bit-identity contract
//!
//! Compiled execution is **bit-identical** to the eager eval path it
//! replaces, on both f32 and int8:
//!
//! * f32: the plan obtains pre-bias GEMM rows from
//!   [`Backend::conv2d_rows_t`] — each backend's own forward reduction,
//!   laid out channel-major so the epilogue streams contiguously —
//!   and the epilogue applies, per element and in order, exactly the
//!   eager arithmetic: `v = rows + bias`, then the [`BatchNorm2d`] eval
//!   fast path `γ·((v − mean)·inv_std) + β` with
//!   `inv_std = 1/√(var + ε)` (never refolded into a scale/shift — f32
//!   is not associative), then `v.max(0.0)`.
//! * int8: integer accumulation is exact, and the epilogue mirrors the
//!   eager per-element order `v = acc·(s_x·s_w[c]) + bias[c]`, then
//!   `v·scale[c] + shift[c]`, then `v.max(0.0)`.
//!
//! The golden traces and the perf-gate baselines therefore hold
//! unchanged whether `ECOFUSION_COMPILED` is `0` or `1`.
//!
//! # Memory
//!
//! A plan pre-sizes a ping-pong scratch arena at compile time (including
//! the im2col / GEMM-row / int8 lowering buffers), so steady-state
//! [`CompiledPlan::execute_into`] performs **zero heap allocations** —
//! property-tested in `crates/core/tests/prop_compiled.rs`. Plans are
//! memoized in a [`PlanCache`] keyed by (stack fingerprint, input shape
//! incl. batch, precision) and invalidated on weight mutation, mirroring
//! the quantization image's invalidation discipline.

use crate::backend::{self, ConvSpec};
use crate::layer::{BatchNorm2d, Conv2d, Linear, Sequential};
use crate::quant::{conv_rows_t_i8, quantize_activations, QuantConv2d, QuantPipe, QuantStage};
use crate::tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Compiled-execution gate
// ---------------------------------------------------------------------------

const COMPILED_UNSET: u8 = 0;
const COMPILED_OFF: u8 = 1;
const COMPILED_ON: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(COMPILED_UNSET);
static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();

fn env_default() -> bool {
    *ENV_DEFAULT.get_or_init(|| {
        !matches!(std::env::var("ECOFUSION_COMPILED").as_deref(), Ok("0") | Ok("off") | Ok("false"))
    })
}

/// Whether the staged pipeline routes stems/branches through compiled
/// plans: [`set_compiled`] if called, otherwise `ECOFUSION_COMPILED`
/// (default **on**; `0`/`off`/`false` disable for A/B comparison).
pub fn compiled_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        COMPILED_OFF => false,
        COMPILED_ON => true,
        _ => env_default(),
    }
}

/// Overrides the compiled-execution gate process-wide. `None` restores
/// the `ECOFUSION_COMPILED` environment default. Used by A/B benches and
/// the compiled-vs-eager property suite.
pub fn set_compiled(on: Option<bool>) {
    let v = match on {
        None => COMPILED_UNSET,
        Some(false) => COMPILED_OFF,
        Some(true) => COMPILED_ON,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------------

/// Batch-norm eval parameters captured at compile time. `inv_std` is the
/// eager fast path's `1/√(var + ε)` hoisted out of the frame loop — the
/// same f32 value the eager layer recomputes every forward, so the fused
/// epilogue stays bit-identical.
#[derive(Debug, Clone)]
struct BnFold {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
    gamma: Vec<f32>,
    beta: Vec<f32>,
}

impl BnFold {
    fn capture(bn: &BatchNorm2d) -> BnFold {
        let var = bn.running_var();
        let eps = bn.eps();
        BnFold {
            mean: bn.running_mean().to_vec(),
            inv_std: var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect(),
            gamma: bn.gamma().to_vec(),
            beta: bn.beta().to_vec(),
        }
    }
}

/// One fused operation. Weights are snapshotted at compile time (like the
/// quantization image), so a plan never touches layer state — shard
/// replicas cannot share or regrow per-layer scratch through a plan.
#[derive(Debug, Clone)]
enum Op {
    /// `Conv2d` with optional folded `BatchNorm2d` and ReLU in the GEMM
    /// write-back epilogue.
    ConvF32 { weight: Tensor, bias: Vec<f32>, spec: ConvSpec, bn: Option<BnFold>, relu: bool },
    /// Int8 convolution with dequant + folded-BN affine + ReLU fused
    /// into the i32-accumulator write-back. `deq[c] = act_scale ·
    /// w_scale[c]` is precomputed at compile time.
    ConvI8 {
        q: Vec<i8>,
        deq: Vec<f32>,
        bias: Vec<f32>,
        spec: ConvSpec,
        act_scale: f32,
        affine: Option<(Vec<f32>, Vec<f32>)>,
        relu: bool,
    },
    /// `Linear` with bias (+ optional ReLU) in the GEMM write-back.
    LinearF32 { weight: Tensor, bias: Vec<f32>, relu: bool },
    /// Max pooling, stride = kernel (the eval fast path of `MaxPool2d`).
    MaxPool { kernel: usize },
    /// Shape bookkeeping only — executes as a no-op on the flat arena.
    Flatten,
}

/// One plan step: a fused op plus its compile-time-resolved shapes.
#[derive(Debug, Clone)]
struct Step {
    op: Op,
    in_shape: Vec<usize>,
    out_shape: Vec<usize>,
}

/// The pre-sized scratch arena of one plan. All lowering buffers live
/// here (never in layer state), sized once at compile time for the
/// plan's fixed input shape.
#[derive(Debug, Clone, Default)]
struct PlanArena {
    /// Ping-pong intermediate activation buffers.
    ping: Vec<f32>,
    pong: Vec<f32>,
    /// f32 im2col columns.
    cols: Vec<f32>,
    /// Pre-bias GEMM rows `(N·Ho·Wo, C_out)`.
    rows: Vec<f32>,
    /// Quantized activations.
    qx: Vec<i8>,
    /// Int8 im2col columns.
    cols_i8: Vec<i8>,
    /// i32 GEMM accumulators.
    acc: Vec<i32>,
}

/// A compiled, fused execution plan for one stack × input shape ×
/// precision. Owns weight snapshots and a pre-sized arena; see the
/// module docs for the fusion rules and the bit-identity contract.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    steps: Vec<Step>,
    arena: PlanArena,
    in_shape: Vec<usize>,
    out_shape: Vec<usize>,
    /// Index of the last step that moves data (everything after is
    /// `Flatten` shape bookkeeping); `None` when no step moves data.
    last_compute: Option<usize>,
}

impl CompiledPlan {
    /// The input shape the plan was compiled for (batch included).
    pub fn in_shape(&self) -> &[usize] {
        &self.in_shape
    }

    /// The output shape the plan produces.
    pub fn out_shape(&self) -> &[usize] {
        &self.out_shape
    }

    /// Fused steps in the plan (diagnostics).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Runs the plan, allocating only the output tensor.
    ///
    /// # Panics
    /// Panics if `x` does not match the compiled input shape.
    pub fn execute(&mut self, x: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&self.out_shape.clone());
        self.execute_into(x, &mut out);
        out
    }

    /// Runs the plan into a caller-owned output tensor: the steady-state
    /// zero-allocation path (no heap allocation once per-thread GEMM
    /// pack buffers are warm).
    ///
    /// # Panics
    /// Panics if `x` or `out` does not match the compiled shapes.
    pub fn execute_into(&mut self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.shape(), &self.in_shape[..], "plan compiled for a different input shape");
        assert_eq!(out.shape(), &self.out_shape[..], "plan output shape mismatch");
        let Some(last_compute) = self.last_compute else {
            // Shape-only plan (empty or all-Flatten): copy through.
            out.data_mut().copy_from_slice(x.data());
            return;
        };
        // `steps` and `arena` are disjoint fields, so the plan can read
        // its program while mutating its scratch.
        let steps = &self.steps;
        let arena = &mut self.arena;
        // Which buffer holds the current intermediate activation.
        #[derive(Clone, Copy, PartialEq)]
        enum Loc {
            Input,
            Ping,
            Pong,
        }
        let mut cur = Loc::Input;
        for (i, step) in steps.iter().enumerate() {
            if matches!(step.op, Op::Flatten) {
                continue;
            }
            let in_numel: usize = step.in_shape.iter().product();
            let out_numel: usize = step.out_shape.iter().product();
            let to_out = i == last_compute;
            // Split the arena so src and dst can borrow different
            // buffers simultaneously.
            let PlanArena { ping, pong, cols, rows, qx, cols_i8, acc } = arena;
            let (src, dst, next): (&[f32], &mut [f32], Loc) = match (cur, to_out) {
                (Loc::Input, true) => (x.data(), out.data_mut(), cur),
                (Loc::Input, false) => (x.data(), &mut ping[..out_numel], Loc::Ping),
                (Loc::Ping, true) => (&ping[..in_numel], out.data_mut(), cur),
                (Loc::Ping, false) => (&ping[..in_numel], &mut pong[..out_numel], Loc::Pong),
                (Loc::Pong, true) => (&pong[..in_numel], out.data_mut(), cur),
                (Loc::Pong, false) => (&pong[..in_numel], &mut ping[..out_numel], Loc::Ping),
            };
            run_step(step, src, dst, cols, rows, qx, cols_i8, acc);
            cur = next;
            if to_out {
                break;
            }
        }
    }
}

/// Executes one fused step from `src` into `dst` using the plan's
/// lowering buffers.
#[allow(clippy::too_many_arguments)]
fn run_step(
    step: &Step,
    src: &[f32],
    dst: &mut [f32],
    cols: &mut Vec<f32>,
    rows: &mut Vec<f32>,
    qx: &mut Vec<i8>,
    cols_i8: &mut Vec<i8>,
    acc: &mut Vec<i32>,
) {
    match &step.op {
        Op::ConvF32 { weight, bias, spec, bn, relu } => {
            let dims = [step.in_shape[0], step.in_shape[1], step.in_shape[2], step.in_shape[3]];
            let (n, co) = (dims[0], spec.out_channels);
            let (ho, wo) = spec.out_size(dims[2], dims[3]);
            backend::active().conv2d_rows_t(src, dims, weight, spec, cols, rows);
            // Fused write-back: bias, batch-norm eval affine, ReLU — the
            // exact eager per-element arithmetic, in the eager order.
            // The transposed rows make both sides of the epilogue
            // contiguous: each (batch, channel) pair streams one GEMM run
            // straight into its NCHW plane with scalar per-channel
            // constants, so the inner loop vectorizes with no scatter.
            let plane = ho * wo;
            let m_total = n * plane;
            for b in 0..n {
                for c in 0..co {
                    let run = &rows[c * m_total + b * plane..c * m_total + (b + 1) * plane];
                    let out = &mut dst[(b * co + c) * plane..(b * co + c + 1) * plane];
                    let bias_c = bias[c];
                    if let Some(f) = bn {
                        let (g, mu, is, bt) = (f.gamma[c], f.mean[c], f.inv_std[c], f.beta[c]);
                        if *relu {
                            for (o, &r) in out.iter_mut().zip(run) {
                                *o = (g * (((r + bias_c) - mu) * is) + bt).max(0.0);
                            }
                        } else {
                            for (o, &r) in out.iter_mut().zip(run) {
                                *o = g * (((r + bias_c) - mu) * is) + bt;
                            }
                        }
                    } else if *relu {
                        for (o, &r) in out.iter_mut().zip(run) {
                            *o = (r + bias_c).max(0.0);
                        }
                    } else {
                        for (o, &r) in out.iter_mut().zip(run) {
                            *o = r + bias_c;
                        }
                    }
                }
            }
        }
        Op::ConvI8 { q, deq, bias, spec, act_scale, affine, relu } => {
            let [n, c, h, w] =
                [step.in_shape[0], step.in_shape[1], step.in_shape[2], step.in_shape[3]];
            let (ho, wo) = spec.out_size(h, w);
            let co = spec.out_channels;
            let rows_n = n * ho * wo;
            quantize_activations(src, *act_scale, qx);
            // Transposed lowering: i32 accumulation is exact, so the
            // summation order is immaterial and the accumulators land
            // channel-major — one contiguous run per (batch, channel)
            // for the epilogue below.
            conv_rows_t_i8(qx, [n, c, h, w], spec, q, cols_i8, acc);
            // Fused dequant + folded-BN affine + ReLU straight off the
            // i32 accumulators — the eager pipe's per-element op order
            // (Conv dequant+bias, Affine, ReLU) without the two
            // intermediate tensors.
            let plane = ho * wo;
            for b in 0..n {
                for ci in 0..co {
                    let run = &acc[ci * rows_n + b * plane..ci * rows_n + (b + 1) * plane];
                    let out = &mut dst[(b * co + ci) * plane..(b * co + ci + 1) * plane];
                    let (dq, bias_c) = (deq[ci], bias[ci]);
                    if let Some((s, t)) = affine {
                        let (sc, sh) = (s[ci], t[ci]);
                        if *relu {
                            for (o, &a) in out.iter_mut().zip(run) {
                                *o = ((a as f32 * dq + bias_c) * sc + sh).max(0.0);
                            }
                        } else {
                            for (o, &a) in out.iter_mut().zip(run) {
                                *o = (a as f32 * dq + bias_c) * sc + sh;
                            }
                        }
                    } else if *relu {
                        for (o, &a) in out.iter_mut().zip(run) {
                            *o = (a as f32 * dq + bias_c).max(0.0);
                        }
                    } else {
                        for (o, &a) in out.iter_mut().zip(run) {
                            *o = a as f32 * dq + bias_c;
                        }
                    }
                }
            }
        }
        Op::LinearF32 { weight, bias, relu } => {
            let (n, in_f) = (step.in_shape[0], step.in_shape[1]);
            let out_f = step.out_shape[1];
            // GEMM methods write into a caller-zeroed buffer.
            dst.fill(0.0);
            backend::active().gemm_nt(n, in_f, out_f, src, weight.data(), dst);
            for row in dst.chunks_exact_mut(out_f) {
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
            if *relu {
                for v in dst.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
        Op::MaxPool { kernel } => {
            let [n, c, h, w] =
                [step.in_shape[0], step.in_shape[1], step.in_shape[2], step.in_shape[3]];
            let k = *kernel;
            let (ho, wo) = (h / k, w / k);
            // The eval fast path of `MaxPool2d::forward`, on arena slices.
            // The 2×2 case (the model's only pool) walks both input rows
            // pairwise with the same per-element comparison sequence as
            // the generic loop, minus the per-window slicing.
            if k == 2 {
                for plane in 0..n * c {
                    let base = plane * h * w;
                    for oy in 0..ho {
                        let r0 = &src[base + (oy * 2) * w..base + (oy * 2) * w + w];
                        let r1 = &src[base + (oy * 2 + 1) * w..base + (oy * 2 + 1) * w + w];
                        let out_row = &mut dst[(plane * ho + oy) * wo..(plane * ho + oy + 1) * wo];
                        for ((out, c0), c1) in
                            out_row.iter_mut().zip(r0.chunks_exact(2)).zip(r1.chunks_exact(2))
                        {
                            let mut best = f32::NEG_INFINITY;
                            for &v in c0 {
                                if v > best {
                                    best = v;
                                }
                            }
                            for &v in c1 {
                                if v > best {
                                    best = v;
                                }
                            }
                            *out = best;
                        }
                    }
                }
                return;
            }
            for plane in 0..n * c {
                let base = plane * h * w;
                for oy in 0..ho {
                    let out_row = &mut dst[(plane * ho + oy) * wo..(plane * ho + oy + 1) * wo];
                    for (ox, out) in out_row.iter_mut().enumerate() {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..k {
                            let row = base + (oy * k + ky) * w + ox * k;
                            for &v in &src[row..row + k] {
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        *out = best;
                    }
                }
            }
        }
        Op::Flatten => unreachable!("Flatten steps are skipped by the executor"),
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Why a stack could not be lowered to a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The stack contains a layer/stage kind the compiler cannot fuse.
    Unsupported(&'static str),
    /// A layer's expected input does not match the tracked shape.
    ShapeMismatch {
        /// The layer that rejected its input.
        layer: &'static str,
        /// What the layer expects (channels or features).
        expected: usize,
        /// What the tracked shape provides.
        found: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unsupported(name) => write!(f, "cannot compile layer `{name}`"),
            CompileError::ShapeMismatch { layer, expected, found } => {
                write!(f, "{layer} expects {expected} input channels/features, got {found}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Incrementally lowers layer stacks into a [`CompiledPlan`]. Callers
/// compose heterogeneous stacks (e.g. a branch backbone followed by its
/// detection-head convolution) before [`PlanBuilder::finish`] sizes the
/// arena.
#[derive(Debug)]
pub struct PlanBuilder {
    steps: Vec<Step>,
    in_shape: Vec<usize>,
    cur_shape: Vec<usize>,
}

impl PlanBuilder {
    /// Starts a plan for inputs of `in_shape` (batch included).
    pub fn new(in_shape: &[usize]) -> PlanBuilder {
        PlanBuilder { steps: Vec::new(), in_shape: in_shape.to_vec(), cur_shape: in_shape.to_vec() }
    }

    /// The shape the next pushed layer will receive.
    pub fn current_shape(&self) -> &[usize] {
        &self.cur_shape
    }

    fn push_step(&mut self, op: Op, out_shape: Vec<usize>) {
        self.steps.push(Step {
            op,
            in_shape: self.cur_shape.clone(),
            out_shape: out_shape.clone(),
        });
        self.cur_shape = out_shape;
    }

    /// Lowers a whole [`Sequential`] with peephole fusion: `Conv2d [→
    /// BatchNorm2d] [→ ReLU]` and `Linear [→ ReLU]` runs collapse into
    /// single fused steps; `MaxPool2d` and `Flatten` become plan steps.
    ///
    /// # Errors
    /// [`CompileError::Unsupported`] on any other layer kind (including
    /// a ReLU that does not follow a conv/linear) — callers fall back to
    /// eager execution.
    pub fn push_sequential(&mut self, seq: &Sequential) -> Result<(), CompileError> {
        let layers = seq.layers();
        let mut i = 0;
        while i < layers.len() {
            let layer = &layers[i];
            if let Some(conv) = layer.as_conv2d() {
                let bn = layers.get(i + 1).and_then(|l| l.as_batchnorm());
                let next = i + 1 + usize::from(bn.is_some());
                let relu = layers.get(next).is_some_and(|l| l.name() == "ReLU");
                self.push_conv(conv, bn, relu)?;
                i = next + usize::from(relu);
            } else if let Some(linear) = layer.as_linear() {
                let relu = layers.get(i + 1).is_some_and(|l| l.name() == "ReLU");
                self.push_linear(linear, relu)?;
                i += 1 + usize::from(relu);
            } else if let Some(pool) = layer.as_maxpool() {
                self.push_maxpool(pool.kernel())?;
                i += 1;
            } else if layer.name() == "Flatten" {
                self.push_flatten();
                i += 1;
            } else {
                return Err(CompileError::Unsupported(layer.name()));
            }
        }
        Ok(())
    }

    /// Pushes one fused `Conv2d [+ BatchNorm2d] [+ ReLU]` step,
    /// snapshotting the weights.
    ///
    /// # Errors
    /// [`CompileError::ShapeMismatch`] if the tracked shape does not
    /// feed the convolution.
    pub fn push_conv(
        &mut self,
        conv: &Conv2d,
        bn: Option<&BatchNorm2d>,
        relu: bool,
    ) -> Result<(), CompileError> {
        let spec = conv.spec();
        if self.cur_shape.len() != 4 || self.cur_shape[1] != spec.in_channels {
            return Err(CompileError::ShapeMismatch {
                layer: "Conv2d",
                expected: spec.in_channels,
                found: if self.cur_shape.len() == 4 { self.cur_shape[1] } else { 0 },
            });
        }
        let (n, h, w) = (self.cur_shape[0], self.cur_shape[2], self.cur_shape[3]);
        let (ho, wo) = spec.out_size(h, w);
        let op = Op::ConvF32 {
            weight: conv.weight().clone(),
            bias: conv.bias().data().to_vec(),
            spec,
            bn: bn.map(BnFold::capture),
            relu,
        };
        self.push_step(op, vec![n, spec.out_channels, ho, wo]);
        Ok(())
    }

    /// Pushes one fused int8 convolution step with an optional folded-BN
    /// affine and ReLU in the dequant epilogue.
    ///
    /// # Errors
    /// [`CompileError::ShapeMismatch`] if the tracked shape does not
    /// feed the convolution.
    pub fn push_quant_conv(
        &mut self,
        qc: &QuantConv2d,
        affine: Option<(Vec<f32>, Vec<f32>)>,
        relu: bool,
    ) -> Result<(), CompileError> {
        let spec = qc.spec;
        if self.cur_shape.len() != 4 || self.cur_shape[1] != spec.in_channels {
            return Err(CompileError::ShapeMismatch {
                layer: "QuantConv2d",
                expected: spec.in_channels,
                found: if self.cur_shape.len() == 4 { self.cur_shape[1] } else { 0 },
            });
        }
        let (n, h, w) = (self.cur_shape[0], self.cur_shape[2], self.cur_shape[3]);
        let (ho, wo) = spec.out_size(h, w);
        let deq: Vec<f32> = qc.weights.scales.iter().map(|s| qc.act_scale * s).collect();
        let op = Op::ConvI8 {
            q: qc.weights.q.clone(),
            deq,
            bias: qc.bias.clone(),
            spec,
            act_scale: qc.act_scale,
            affine,
            relu,
        };
        self.push_step(op, vec![n, spec.out_channels, ho, wo]);
        Ok(())
    }

    /// Lowers a whole [`QuantPipe`] with the same peephole fusion:
    /// `Conv [→ Affine] [→ ReLU]` runs collapse into single fused int8
    /// steps.
    ///
    /// # Errors
    /// [`CompileError::Unsupported`] on an `Affine`/`ReLU` stage that
    /// does not follow a convolution (the canonical quantizer never
    /// emits one).
    pub fn push_quant_pipe(&mut self, pipe: &QuantPipe) -> Result<(), CompileError> {
        let stages = &pipe.stages;
        let mut i = 0;
        while i < stages.len() {
            match &stages[i] {
                QuantStage::Conv(qc) => {
                    let affine = match stages.get(i + 1) {
                        Some(QuantStage::Affine(s, t)) => Some((s.clone(), t.clone())),
                        _ => None,
                    };
                    let next = i + 1 + usize::from(affine.is_some());
                    let relu = matches!(stages.get(next), Some(QuantStage::ReLU));
                    self.push_quant_conv(qc, affine, relu)?;
                    i = next + usize::from(relu);
                }
                QuantStage::MaxPool(k) => {
                    self.push_maxpool(*k)?;
                    i += 1;
                }
                QuantStage::Affine(..) => return Err(CompileError::Unsupported("Affine")),
                QuantStage::ReLU => return Err(CompileError::Unsupported("ReLU")),
            }
        }
        Ok(())
    }

    /// Pushes one fused `Linear [+ ReLU]` step.
    ///
    /// # Errors
    /// [`CompileError::ShapeMismatch`] if the tracked shape is not
    /// `(N, in_features)`.
    pub fn push_linear(&mut self, linear: &Linear, relu: bool) -> Result<(), CompileError> {
        if self.cur_shape.len() != 2 || self.cur_shape[1] != linear.in_features() {
            return Err(CompileError::ShapeMismatch {
                layer: "Linear",
                expected: linear.in_features(),
                found: if self.cur_shape.len() == 2 { self.cur_shape[1] } else { 0 },
            });
        }
        let n = self.cur_shape[0];
        let op = Op::LinearF32 {
            weight: linear.weight().clone(),
            bias: linear.bias().data().to_vec(),
            relu,
        };
        self.push_step(op, vec![n, linear.out_features()]);
        Ok(())
    }

    /// Pushes a max-pool step (stride = kernel).
    ///
    /// # Errors
    /// [`CompileError::ShapeMismatch`] if the tracked shape is not NCHW
    /// at least as large as the kernel.
    pub fn push_maxpool(&mut self, kernel: usize) -> Result<(), CompileError> {
        if self.cur_shape.len() != 4 || self.cur_shape[2] < kernel || self.cur_shape[3] < kernel {
            return Err(CompileError::ShapeMismatch {
                layer: "MaxPool2d",
                expected: kernel,
                found: if self.cur_shape.len() == 4 { self.cur_shape[2] } else { 0 },
            });
        }
        let (n, c, h, w) =
            (self.cur_shape[0], self.cur_shape[1], self.cur_shape[2], self.cur_shape[3]);
        self.push_step(Op::MaxPool { kernel }, vec![n, c, h / kernel, w / kernel]);
        Ok(())
    }

    /// Pushes a copy-free flatten step (`(N, …) → (N, F)` shape
    /// bookkeeping only).
    pub fn push_flatten(&mut self) {
        let n = self.cur_shape[0];
        let f: usize = self.cur_shape.iter().skip(1).product();
        self.push_step(Op::Flatten, vec![n, f]);
    }

    /// Finalizes the plan: resolves the ping-pong schedule and pre-sizes
    /// every arena buffer for the plan's fixed shapes so steady-state
    /// execution never allocates.
    pub fn finish(self) -> CompiledPlan {
        let last_compute = self.steps.iter().rposition(|s| !matches!(s.op, Op::Flatten));
        let mut inter = 0usize; // max intermediate activation numel
        let mut cols = 0usize;
        let mut rows = 0usize;
        let mut qx = 0usize;
        let mut cols_i8 = 0usize;
        let mut acc = 0usize;
        for (i, step) in self.steps.iter().enumerate() {
            let in_numel: usize = step.in_shape.iter().product();
            let out_numel: usize = step.out_shape.iter().product();
            if Some(i) != last_compute && !matches!(step.op, Op::Flatten) {
                inter = inter.max(out_numel);
            }
            match &step.op {
                Op::ConvF32 { spec, .. } => {
                    let [n, _, h, w] =
                        [step.in_shape[0], step.in_shape[1], step.in_shape[2], step.in_shape[3]];
                    let (ho, wo) = spec.out_size(h, w);
                    let rows_n = n * ho * wo;
                    cols = cols.max(rows_n * spec.patch_len());
                    rows = rows.max(rows_n * spec.out_channels);
                }
                Op::ConvI8 { spec, .. } => {
                    let [n, _, h, w] =
                        [step.in_shape[0], step.in_shape[1], step.in_shape[2], step.in_shape[3]];
                    let (ho, wo) = spec.out_size(h, w);
                    let rows_n = n * ho * wo;
                    qx = qx.max(in_numel);
                    cols_i8 = cols_i8.max(rows_n * spec.patch_len());
                    acc = acc.max(rows_n * spec.out_channels);
                }
                Op::LinearF32 { .. } | Op::MaxPool { .. } | Op::Flatten => {}
            }
        }
        let out_shape =
            self.steps.last().map_or_else(|| self.in_shape.clone(), |s| s.out_shape.clone());
        CompiledPlan {
            steps: self.steps,
            arena: PlanArena {
                ping: vec![0.0; inter],
                pong: vec![0.0; inter],
                cols: Vec::with_capacity(cols),
                rows: Vec::with_capacity(rows),
                qx: Vec::with_capacity(qx),
                cols_i8: Vec::with_capacity(cols_i8),
                acc: Vec::with_capacity(acc),
            },
            in_shape: self.in_shape,
            out_shape,
            last_compute,
        }
    }
}

/// Compiles a whole [`Sequential`] for one input shape. Convenience for
/// [`PlanBuilder::push_sequential`] + [`PlanBuilder::finish`].
///
/// # Errors
/// Propagates the builder's [`CompileError`]; callers fall back to eager
/// execution.
pub fn compile_sequential(
    seq: &Sequential,
    in_shape: &[usize],
) -> Result<CompiledPlan, CompileError> {
    let mut b = PlanBuilder::new(in_shape);
    b.push_sequential(seq)?;
    Ok(b.finish())
}

/// Compiles a whole [`QuantPipe`] for one input shape.
///
/// # Errors
/// Propagates the builder's [`CompileError`].
pub fn compile_quant_pipe(
    pipe: &QuantPipe,
    in_shape: &[usize],
) -> Result<CompiledPlan, CompileError> {
    let mut b = PlanBuilder::new(in_shape);
    b.push_quant_pipe(pipe)?;
    Ok(b.finish())
}

// ---------------------------------------------------------------------------
// Fingerprints and the plan cache
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Tiny FNV-1a-64 accumulator for structural fingerprints.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Structural FNV-1a fingerprint of a [`Sequential`]: layer kinds and
/// geometry (not weights — invalidation on weight mutation is
/// event-driven, mirroring `ensure_quant`). `salt` distinguishes
/// same-architecture units (e.g. the four stems) in a shared cache.
pub fn fingerprint_sequential(seq: &Sequential, salt: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(salt);
    for layer in seq.layers() {
        if let Some(conv) = layer.as_conv2d() {
            let s = conv.spec();
            h.write_u64(1);
            for d in [s.in_channels, s.out_channels, s.kernel, s.stride, s.padding] {
                h.write_usize(d);
            }
        } else if let Some(bn) = layer.as_batchnorm() {
            h.write_u64(2);
            h.write_usize(bn.gamma().len());
        } else if let Some(linear) = layer.as_linear() {
            h.write_u64(3);
            h.write_usize(linear.in_features());
            h.write_usize(linear.out_features());
        } else if let Some(pool) = layer.as_maxpool() {
            h.write_u64(4);
            h.write_usize(pool.kernel());
        } else {
            h.write_u64(5);
            h.write_usize(layer.name().len());
            for b in layer.name().bytes() {
                h.write_u64(b as u64);
            }
        }
    }
    h.0
}

/// Structural fingerprint of a [`QuantPipe`] (stage kinds + geometry).
pub fn fingerprint_quant_pipe(pipe: &QuantPipe, salt: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(salt);
    for stage in &pipe.stages {
        match stage {
            QuantStage::Conv(qc) => {
                let s = qc.spec;
                h.write_u64(11);
                for d in [s.in_channels, s.out_channels, s.kernel, s.stride, s.padding] {
                    h.write_usize(d);
                }
            }
            QuantStage::Affine(scale, _) => {
                h.write_u64(12);
                h.write_usize(scale.len());
            }
            QuantStage::ReLU => h.write_u64(13),
            QuantStage::MaxPool(k) => {
                h.write_u64(14);
                h.write_usize(*k);
            }
        }
    }
    h.0
}

/// Numeric precision a plan was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanPrecision {
    /// Full f32 stack.
    F32,
    /// Int8 quantized convolutions.
    Int8,
}

/// Cache key: (structural fingerprint incl. caller salt, input shape
/// incl. batch, precision).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural fingerprint (salted per unit).
    pub fingerprint: u64,
    /// Input shape, batch included.
    pub shape: Vec<usize>,
    /// Precision axis.
    pub precision: PlanPrecision,
}

/// Cumulative [`PlanCache`] counters (exported as `TraceSink` metrics by
/// the staged pipeline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an existing plan.
    pub hits: u64,
    /// Lookups that found no plan.
    pub misses: u64,
    /// Plans built (== misses unless a build panicked).
    pub compiles: u64,
}

/// Memoized compiled plans for one model replica.
///
/// Invalidation is event-driven and mirrors the int8 image
/// (`ensure_quant`): every mutable-weight access clears the cache, so a
/// stale plan can never serve after a weight mutation. Cloning a model
/// replica yields an **empty** cache (plans re-warm per replica) — shard
/// replicas never share or regrow each other's arenas.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: HashMap<PlanKey, CompiledPlan>,
    stats: PlanCacheStats,
    taken: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Cached plans currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative hit/miss/compile counters (survive [`PlanCache::clear`]).
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Counter deltas since the previous call — the staged pipeline
    /// flushes these into `TraceSink::bump` after each frame.
    pub fn take_delta(&mut self) -> PlanCacheStats {
        let d = PlanCacheStats {
            hits: self.stats.hits - self.taken.hits,
            misses: self.stats.misses - self.taken.misses,
            compiles: self.stats.compiles - self.taken.compiles,
        };
        self.taken = self.stats;
        d
    }

    /// Drops every resident plan (weight mutation), keeping counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The plan for `key`, compiling (and memoizing) it on first use.
    pub fn get_or_compile(
        &mut self,
        key: PlanKey,
        build: impl FnOnce() -> CompiledPlan,
    ) -> &mut CompiledPlan {
        self.try_get_or_compile(key, || Ok(build())).expect("infallible build")
    }

    /// Fallible variant of [`PlanCache::get_or_compile`]: a failed build
    /// counts as a miss (not a compile) and inserts nothing, so the
    /// caller's eager fallback re-attempts (and re-fails fast) next time.
    ///
    /// # Errors
    /// Propagates the builder's [`CompileError`].
    pub fn try_get_or_compile(
        &mut self,
        key: PlanKey,
        build: impl FnOnce() -> Result<CompiledPlan, CompileError>,
    ) -> Result<&mut CompiledPlan, CompileError> {
        if self.map.contains_key(&key) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let plan = build()?;
            self.stats.compiles += 1;
            self.map.insert(key.clone(), plan);
        }
        Ok(self.map.get_mut(&key).expect("plan just ensured"))
    }
}

impl Clone for PlanCache {
    /// Replica clones start cold: plans hold per-replica arenas, so
    /// sharing them across shard replicas is exactly the per-layer
    /// scratch aliasing the plan design removes.
    fn clone(&self) -> PlanCache {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Flatten, Layer, MaxPool2d, ReLU};
    use crate::quant::quantize_sequential;
    use crate::rng::Rng;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-wide compiled gate.
    static GATE: Mutex<()> = Mutex::new(());

    fn conv_bn_relu_pool(rng: &mut Rng) -> Sequential {
        let mut seq = Sequential::new(vec![
            Box::new(Conv2d::new(2, 8, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
        ]);
        // Settle running stats so the BN eval affine is nontrivial.
        let warm = Tensor::randn(&[4, 2, 8, 8], 1.0, rng);
        for _ in 0..5 {
            let _ = seq.forward(&warm, true);
        }
        seq
    }

    #[test]
    fn compiled_conv_bn_relu_pool_is_bit_identical() {
        let mut rng = Rng::new(41);
        let mut seq = conv_bn_relu_pool(&mut rng);
        for batch in [1usize, 3, 8] {
            let x = Tensor::randn(&[batch, 2, 8, 8], 1.0, &mut rng);
            let eager = seq.forward(&x, false);
            let mut plan = compile_sequential(&seq, x.shape()).expect("compiles");
            assert_eq!(plan.num_steps(), 2, "Conv+BN+ReLU fuse into one step, pool is one more");
            let compiled = plan.execute(&x);
            assert_eq!(compiled.shape(), eager.shape());
            for (a, b) in compiled.data().iter().zip(eager.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn compiled_matches_eager_on_both_backends() {
        let _guard = GATE.lock().unwrap();
        let mut rng = Rng::new(43);
        let mut seq = conv_bn_relu_pool(&mut rng);
        let x = Tensor::randn(&[2, 2, 9, 9], 1.0, &mut rng);
        let before = backend::backend_kind();
        for kind in [backend::BackendKind::Reference, backend::BackendKind::Blocked] {
            backend::set_backend(kind);
            let eager = seq.forward(&x, false);
            let mut plan = compile_sequential(&seq, x.shape()).expect("compiles");
            let compiled = plan.execute(&x);
            for (a, b) in compiled.data().iter().zip(eager.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?}: {a} vs {b}");
            }
        }
        backend::set_backend(before);
    }

    #[test]
    fn compiled_linear_relu_and_flatten_are_bit_identical() {
        let mut rng = Rng::new(44);
        let mut seq = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(2 * 4 * 4, 16, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(16, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[5, 2, 4, 4], 1.0, &mut rng);
        let eager = seq.forward(&x, false);
        let mut plan = compile_sequential(&seq, x.shape()).expect("compiles");
        assert_eq!(plan.num_steps(), 3, "Flatten + fused Linear/ReLU + Linear");
        let compiled = plan.execute(&x);
        assert_eq!(compiled.shape(), eager.shape());
        for (a, b) in compiled.data().iter().zip(eager.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn compiled_quant_pipe_is_bit_identical() {
        let mut rng = Rng::new(45);
        let seq = conv_bn_relu_pool(&mut rng);
        let calib: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng)).collect();
        let (pipe, _) = quantize_sequential(&seq, &calib).expect("quantizes");
        for batch in [1usize, 4] {
            let x = Tensor::randn(&[batch, 2, 8, 8], 1.0, &mut rng);
            let eager = pipe.forward(&x);
            let mut plan = compile_quant_pipe(&pipe, x.shape()).expect("compiles");
            assert_eq!(plan.num_steps(), 2, "Conv+Affine+ReLU fuse, pool is one more");
            let compiled = plan.execute(&x);
            assert_eq!(compiled.shape(), eager.shape());
            for (a, b) in compiled.data().iter().zip(eager.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn execute_into_reuses_the_arena() {
        let mut rng = Rng::new(46);
        let seq = conv_bn_relu_pool(&mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let mut plan = compile_sequential(&seq, x.shape()).expect("compiles");
        let mut out = Tensor::zeros(plan.out_shape());
        plan.execute_into(&x, &mut out);
        let first = out.clone();
        // Arena buffers must not regrow across steady-state executions.
        let caps = (
            plan.arena.cols.capacity(),
            plan.arena.rows.capacity(),
            plan.arena.ping.capacity(),
            plan.arena.pong.capacity(),
        );
        for _ in 0..3 {
            plan.execute_into(&x, &mut out);
        }
        assert_eq!(out, first, "steady-state executions must be identical");
        assert_eq!(
            caps,
            (
                plan.arena.cols.capacity(),
                plan.arena.rows.capacity(),
                plan.arena.ping.capacity(),
                plan.arena.pong.capacity(),
            ),
            "arena regrew mid-flight"
        );
    }

    #[test]
    fn unsupported_layer_reports_its_name() {
        let mut rng = Rng::new(47);
        let seq = Sequential::new(vec![Box::new(crate::layer::SelfAttention2d::new(4, &mut rng))]);
        match compile_sequential(&seq, &[1, 4, 4, 4]) {
            Err(CompileError::Unsupported(name)) => assert_eq!(name, "SelfAttention2d"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = Rng::new(48);
        let seq = Sequential::new(vec![Box::new(Conv2d::new(3, 4, 3, 1, 1, &mut rng))]);
        match compile_sequential(&seq, &[1, 2, 8, 8]) {
            Err(CompileError::ShapeMismatch { layer, expected, found }) => {
                assert_eq!((layer, expected, found), ("Conv2d", 3, 2));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn plan_cache_counts_hits_misses_and_clears() {
        let mut rng = Rng::new(49);
        let seq = conv_bn_relu_pool(&mut rng);
        let mut cache = PlanCache::new();
        let key = PlanKey {
            fingerprint: fingerprint_sequential(&seq, 7),
            shape: vec![1, 2, 8, 8],
            precision: PlanPrecision::F32,
        };
        let build = || compile_sequential(&seq, &[1, 2, 8, 8]).expect("compiles");
        let _ = cache.get_or_compile(key.clone(), build);
        let _ = cache.get_or_compile(key.clone(), build);
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1, compiles: 1 });
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        let _ = cache.get_or_compile(key, build);
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 2, compiles: 2 });
        // Deltas flush once.
        assert_eq!(cache.take_delta(), PlanCacheStats { hits: 1, misses: 2, compiles: 2 });
        assert_eq!(cache.take_delta(), PlanCacheStats::default());
        // Replica clones start cold but keep nothing stale.
        assert!(cache.clone().is_empty());
    }

    #[test]
    fn fingerprints_separate_structure_and_salt() {
        let mut rng = Rng::new(50);
        let a = conv_bn_relu_pool(&mut rng);
        let b = Sequential::new(vec![Box::new(Conv2d::new(2, 8, 3, 1, 1, &mut rng))]);
        assert_ne!(fingerprint_sequential(&a, 0), fingerprint_sequential(&b, 0));
        assert_ne!(fingerprint_sequential(&a, 0), fingerprint_sequential(&a, 1));
        assert_eq!(fingerprint_sequential(&a, 3), fingerprint_sequential(&a, 3));
    }

    #[test]
    fn compiled_gate_override_roundtrip() {
        let _guard = GATE.lock().unwrap();
        let env = env_default();
        set_compiled(Some(false));
        assert!(!compiled_enabled());
        set_compiled(Some(true));
        assert!(compiled_enabled());
        set_compiled(None);
        assert_eq!(compiled_enabled(), env);
    }

    #[test]
    fn flatten_only_plan_copies_through() {
        let seq = Sequential::new(vec![Box::new(Flatten::new())]);
        let mut rng = Rng::new(51);
        let x = Tensor::randn(&[2, 3, 2, 2], 1.0, &mut rng);
        let mut plan = compile_sequential(&seq, x.shape()).expect("compiles");
        let y = plan.execute(&x);
        assert_eq!(y.shape(), &[2, 12]);
        assert_eq!(y.data(), x.data());
    }
}
