//! The reference backend: the workspace's original scalar loops, kept as
//! the correctness oracle every optimized backend is validated against.

use super::{dims4, Backend, ConvGrads, ConvSpec};
use crate::tensor::Tensor;

/// Straightforward scalar kernels. Slow but obviously correct: GEMM is the
/// textbook triple loop (cache-friendly loop orders, nothing else) and the
/// convolution is computed directly from its definition without lowering.
#[derive(Debug, Default, Clone, Copy)]
pub struct Reference;

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        // ikj loop order: stream over rhs rows for cache locality.
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut c[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        // A is (k, m): stream both inputs row-wise, scatter into C rows.
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let o_row = &mut c[i * n..(i + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        // B is (n, k): every output is a dot product of two rows.
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn conv2d_forward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        bias: &[f32],
        spec: &ConvSpec,
        _scratch: &mut Vec<f32>,
    ) -> Tensor {
        let (n, ci_n, h, w) = dims4(x);
        debug_assert_eq!(ci_n, spec.in_channels);
        let (ho, wo) = spec.out_size(h, w);
        let k = spec.kernel;
        let co_n = spec.out_channels;
        let mut y = Tensor::zeros(&[n, co_n, ho, wo]);
        let yd = y.data_mut();
        let xd = x.data();
        let wd = weight.data();
        for b in 0..n {
            for co in 0..co_n {
                let w_base = co * spec.patch_len();
                for oy in 0..ho {
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    for ox in 0..wo {
                        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                        let mut acc = 0.0f32;
                        // Accumulate in (ci, ky, kx) order — the same
                        // order as the im2col patch layout, so optimized
                        // backends can match this sum exactly.
                        for ci in 0..ci_n {
                            let ch_base = (b * ci_n + ci) * h * w;
                            let wk_base = w_base + ci * k * k;
                            for ky in 0..k {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let src_row = ch_base + iy as usize * w;
                                let wrow = wk_base + ky * k;
                                for kx in 0..k {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += wd[wrow + kx] * xd[src_row + ix as usize];
                                }
                            }
                        }
                        yd[((b * co_n + co) * ho + oy) * wo + ox] = acc + bias[co];
                    }
                }
            }
        }
        y
    }

    fn conv2d_backward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: &ConvSpec,
        _scratch: &mut Vec<f32>,
        _cols_valid: bool,
    ) -> ConvGrads {
        let (n, ci_n, h, w) = dims4(x);
        let (ho, wo) = spec.out_size(h, w);
        let k = spec.kernel;
        let co_n = spec.out_channels;
        let mut dw = Tensor::zeros(&[co_n, spec.patch_len()]);
        let mut db = Tensor::zeros(&[co_n]);
        let mut dx = Tensor::zeros(&[n, ci_n, h, w]);
        let xd = x.data();
        let wd = weight.data();
        let gd = grad_out.data();
        let dwd = dw.data_mut();
        {
            let dbd = db.data_mut();
            for b in 0..n {
                for (co, d) in dbd.iter_mut().enumerate() {
                    let base = (b * co_n + co) * ho * wo;
                    let s: f32 = gd[base..base + ho * wo].iter().sum();
                    *d += s;
                }
            }
        }
        let dxd = dx.data_mut();
        for b in 0..n {
            for co in 0..co_n {
                let w_base = co * spec.patch_len();
                for oy in 0..ho {
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    for ox in 0..wo {
                        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                        let g = gd[((b * co_n + co) * ho + oy) * wo + ox];
                        if g == 0.0 {
                            continue;
                        }
                        for ci in 0..ci_n {
                            let ch_base = (b * ci_n + ci) * h * w;
                            let wk_base = w_base + ci * k * k;
                            for ky in 0..k {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let src_row = ch_base + iy as usize * w;
                                let wrow = wk_base + ky * k;
                                for kx in 0..k {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    dwd[wrow + kx] += g * xd[src_row + ix as usize];
                                    dxd[src_row + ix as usize] += g * wd[wrow + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        ConvGrads { dw, db, dx }
    }

    fn conv2d_rows(
        &self,
        x: &[f32],
        dims: [usize; 4],
        weight: &Tensor,
        spec: &ConvSpec,
        _cols: &mut Vec<f32>,
        rows: &mut Vec<f32>,
    ) {
        // The direct loops of `conv2d_forward` with the bias add and NCHW
        // write elided: the reference forward skips out-of-bounds taps
        // rather than multiplying padded zeros, so the rows must come
        // from the same reduction to keep the epilogue bit-identical.
        let [n, ci_n, h, w] = dims;
        debug_assert_eq!(ci_n, spec.in_channels);
        let (ho, wo) = spec.out_size(h, w);
        let k = spec.kernel;
        let co_n = spec.out_channels;
        rows.clear();
        rows.resize(n * ho * wo * co_n, 0.0);
        let wd = weight.data();
        for b in 0..n {
            for co in 0..co_n {
                let w_base = co * spec.patch_len();
                for oy in 0..ho {
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    for ox in 0..wo {
                        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                        let mut acc = 0.0f32;
                        for ci in 0..ci_n {
                            let ch_base = (b * ci_n + ci) * h * w;
                            let wk_base = w_base + ci * k * k;
                            for ky in 0..k {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let src_row = ch_base + iy as usize * w;
                                let wrow = wk_base + ky * k;
                                for kx in 0..k {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += wd[wrow + kx] * x[src_row + ix as usize];
                                }
                            }
                        }
                        rows[((b * ho + oy) * wo + ox) * co_n + co] = acc;
                    }
                }
            }
        }
    }

    fn conv2d_rows_t(
        &self,
        x: &[f32],
        dims: [usize; 4],
        weight: &Tensor,
        spec: &ConvSpec,
        _cols: &mut Vec<f32>,
        rows: &mut Vec<f32>,
    ) {
        // Same direct reduction as `conv2d_rows` above; only the output
        // index is transposed to `(C_out, N·Ho·Wo)`, so each element's
        // accumulation chain is untouched.
        let [n, ci_n, h, w] = dims;
        debug_assert_eq!(ci_n, spec.in_channels);
        let (ho, wo) = spec.out_size(h, w);
        let k = spec.kernel;
        let co_n = spec.out_channels;
        let m_total = n * ho * wo;
        rows.clear();
        rows.resize(m_total * co_n, 0.0);
        let wd = weight.data();
        for b in 0..n {
            for co in 0..co_n {
                let w_base = co * spec.patch_len();
                for oy in 0..ho {
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    for ox in 0..wo {
                        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                        let mut acc = 0.0f32;
                        for ci in 0..ci_n {
                            let ch_base = (b * ci_n + ci) * h * w;
                            let wk_base = w_base + ci * k * k;
                            for ky in 0..k {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let src_row = ch_base + iy as usize * w;
                                let wrow = wk_base + ky * k;
                                for kx in 0..k {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += wd[wrow + kx] * x[src_row + ix as usize];
                                }
                            }
                        }
                        rows[co * m_total + (b * ho + oy) * wo + ox] = acc;
                    }
                }
            }
        }
    }
}
