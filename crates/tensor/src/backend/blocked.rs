//! The blocked backend: register-tiled GEMM with scoped-thread data
//! parallelism, and im2col + GEMM convolution.
//!
//! The GEMM microkernel computes an `MR × NR` output tile with fused
//! multiply-add accumulators held in registers across the whole shared
//! dimension, streaming `B` through a packed contiguous panel: every
//! packed `B` chunk is reused `MR` times, every `A` element `NR` times,
//! and `C` is touched exactly once — which removes the per-element
//! load/store traffic that bounds the reference loops and lets the FMA
//! units run at throughput (~4× the reference on a 128³ matmul on one
//! AVX-512 core). Each output element accumulates over `k` in increasing
//! order; results differ from the reference backend only by FMA rounding,
//! which the parity suite bounds at `1e-4` (see `backend/mod.rs`).
//!
//! Parallelism uses `std::thread::scope` over disjoint row blocks of the
//! output (the batch/output-channel dimension after lowering) — reductions
//! are never split, so thread count does not affect results. `rayon` would
//! provide the same shape of parallelism with a persistent pool; the
//! scoped-thread implementation keeps the workspace dependency-free and
//! costs one thread spawn per large kernel invocation, which measures as
//! noise at the sizes where parallelism is enabled at all.

use super::{col2im, dims4, im2col, nchw_to_rows, rows_to_nchw, Backend, ConvGrads, ConvSpec};
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Rows per microtile: 8 independent FMA chains per column vector.
const MR: usize = 8;
/// Columns per microtile: one AVX-512 vector / two AVX2 vectors, so the
/// `MR × NR` accumulator block stays in registers.
const NR: usize = 16;
/// Narrow column microtile for output widths with `8 ≤ width % NR`: one
/// AVX2 vector. Without it, n = 8 shapes — every 8-channel stem
/// convolution lowers to one — would take the scalar remainder path for
/// their entire output.
const NR8: usize = 8;
/// Minimum multiply-adds before a GEMM fans out across threads: below
/// this, thread spawn overhead exceeds the kernel time.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

thread_local! {
    /// Per-thread buffer for transposed whole-operand packing
    /// (`gemm_tn`/`gemm_nt`).
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread buffer for the microkernel's contiguous B panels
    /// (separate from `PACK`: a transposed-operand GEMM packs both).
    static PANEL: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Register-tiled, cache-aware, parallel kernels (the default backend).
#[derive(Debug, Default, Clone, Copy)]
pub struct Blocked;

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        gemm_parallel(m, k, n, a, b, c);
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        // Pack Aᵀ (k×m -> m×k), then run the main kernel. The pack is
        // O(km) against the kernel's O(kmn) and keeps A accesses unit
        // stride; per-element accumulation order is unchanged.
        debug_assert_eq!(a.len(), k * m);
        PACK.with(|buf| {
            let mut at = buf.borrow_mut();
            transpose_into(a, k, m, &mut at);
            gemm_parallel(m, k, n, &at, b, c);
        });
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        // Pack Bᵀ (n×k -> k×n), then run the main kernel.
        debug_assert_eq!(b.len(), n * k);
        PACK.with(|buf| {
            let mut bt = buf.borrow_mut();
            transpose_into(b, n, k, &mut bt);
            gemm_parallel(m, k, n, a, &bt, c);
        });
    }

    fn conv2d_forward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        bias: &[f32],
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
    ) -> Tensor {
        let (n, _, h, w) = dims4(x);
        let (ho, wo) = spec.out_size(h, w);
        let rows_n = n * ho * wo;
        let ck = spec.patch_len();
        im2col(x, spec, scratch);
        let mut rows = vec![0.0f32; rows_n * spec.out_channels];
        self.gemm_nt(rows_n, ck, spec.out_channels, scratch, weight.data(), &mut rows);
        rows_to_nchw(&rows, bias, n, spec.out_channels, ho, wo)
    }

    fn conv2d_backward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
        cols_valid: bool,
    ) -> ConvGrads {
        let (n, _, h, w) = dims4(x);
        let (ho, wo) = spec.out_size(h, w);
        let rows_n = n * ho * wo;
        let ck = spec.patch_len();
        let co = spec.out_channels;
        let grows = nchw_to_rows(grad_out, n, co, ho, wo);
        // The forward pass lowered this exact input; reuse its columns
        // when the caller can vouch for them (saves one gather per step).
        if !(cols_valid && scratch.len() == rows_n * ck) {
            im2col(x, spec, scratch);
        }
        // dW (co×ck) = growsᵀ (co×rows) · cols (rows×ck).
        let mut dw = Tensor::zeros(&[co, ck]);
        self.gemm_tn(co, rows_n, ck, &grows, scratch, dw.data_mut());
        // db = column sums of grows.
        let mut db = Tensor::zeros(&[co]);
        {
            let dbd = db.data_mut();
            for row in grows.chunks_exact(co) {
                for (d, g) in dbd.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        // dcols (rows×ck) = grows (rows×co) · W (co×ck), then scatter.
        let mut dcols = vec![0.0f32; rows_n * ck];
        self.gemm(rows_n, co, ck, &grows, weight.data(), &mut dcols);
        let dx = col2im(&dcols, spec, [n, spec.in_channels, h, w]);
        ConvGrads { dw, db, dx }
    }
}

/// Transposes `src` (rows×cols, row-major) into `dst` (cols×rows).
fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    dst.clear();
    dst.resize(rows * cols, 0.0);
    // Tile the transpose so both access patterns stay cache-resident.
    const T: usize = 32;
    for r0 in (0..rows).step_by(T) {
        for c0 in (0..cols).step_by(T) {
            for r in r0..(r0 + T).min(rows) {
                for c in c0..(c0 + T).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Splits C's rows across threads when the kernel is large enough;
/// reductions stay whole per element, so the split never changes results.
fn gemm_parallel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    // Threshold check before the parallelism probe: `available_parallelism`
    // reads cgroup files on Linux (heap + syscalls), which would otherwise
    // tax every small GEMM — and break the compiled path's zero-allocation
    // steady state. The probe result itself is cached for the same reason.
    let flops = m.saturating_mul(k).saturating_mul(n);
    if flops < PAR_FLOP_THRESHOLD {
        gemm_serial(m, k, n, a, b, c);
        return;
    }
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let threads =
        *THREADS.get_or_init(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1));
    if threads < 2 {
        gemm_serial(m, k, n, a, b, c);
        return;
    }
    // Row blocks aligned to MR so every thread runs whole microtiles.
    let workers = threads.min(m.div_ceil(MR));
    let rows_per = m.div_ceil(workers).div_ceil(MR) * MR;
    std::thread::scope(|s| {
        let mut rest = c;
        let mut row0 = 0;
        while row0 < m {
            let rows = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let a_block = &a[row0 * k..(row0 + rows) * k];
            s.spawn(move || gemm_serial(rows, k, n, a_block, b, chunk));
            row0 += rows;
        }
    });
}

/// Single-threaded register-tiled GEMM: C (m×n) = A (m×k) · B (k×n).
fn gemm_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let full_rows = m - m % MR;
    let full16 = n - n % NR;
    // One narrow microtile column covers 8 of any remaining width; only a
    // sub-8 sliver falls through to the scalar remainder path.
    let full8 = if n - full16 >= NR8 { full16 + NR8 } else { full16 };
    if full_rows > 0 {
        if full16 > 0 {
            panel_region::<NR>(k, n, full_rows, a, b, c, 0, full16);
        }
        if full8 > full16 {
            panel_region::<NR8>(k, n, full_rows, a, b, c, full16, full8);
        }
        // Sub-8 column tail: narrow microtiles instead of streaming AXPY —
        // same ascending-k accumulation chain per element, so identical
        // bits, but the A row block stays register-resident. Matters for
        // skinny outputs (e.g. a 13-channel head conv: n = 8 + 4 + 1).
        let mut j = full8;
        while n - j >= 4 {
            panel_region::<4>(k, n, full_rows, a, b, c, j, j + 4);
            j += 4;
        }
        while n - j >= 2 {
            panel_region::<2>(k, n, full_rows, a, b, c, j, j + 2);
            j += 2;
        }
        if j < n {
            panel_region::<1>(k, n, full_rows, a, b, c, j, n);
        }
    }
    // Row tail over all columns.
    if full_rows < m {
        let a_tail = &a[full_rows * k..];
        let c_tail = &mut c[full_rows * n..];
        axpy_block(m - full_rows, k, n, a_tail, b, c_tail, 0, n);
    }
}

/// Runs `W`-wide microtile columns over `[j_start, j_end)` for all full
/// `MR` row blocks, packing each B j-panel contiguous once so every row
/// block streams it from L1/L2 without strided bounds checks.
#[allow(clippy::too_many_arguments)] // kernel: dims + three operands + column range
fn panel_region<const W: usize>(
    k: usize,
    n: usize,
    full_rows: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    j_start: usize,
    j_end: usize,
) {
    PANEL.with(|buf| {
        let mut panel = buf.borrow_mut();
        panel.clear();
        panel.resize(k * W, 0.0);
        let mut j0 = j_start;
        while j0 + W <= j_end {
            for (dst, src) in panel.chunks_exact_mut(W).zip(b.chunks_exact(n)) {
                dst.copy_from_slice(&src[j0..j0 + W]);
            }
            let mut i0 = 0;
            while i0 + MR <= full_rows {
                microkernel::<W>(
                    k,
                    n,
                    &a[i0 * k..(i0 + MR) * k],
                    &panel,
                    &mut c[i0 * n..(i0 + MR) * n],
                    j0,
                );
                i0 += MR;
            }
            j0 += W;
        }
    });
}

/// Full `MR × W` tile: FMA accumulators in registers, B from the packed
/// panel. Accumulation runs over `k` in increasing order — the same
/// per-element chain as the scalar remainder path, so tile width never
/// changes results.
#[inline]
fn microkernel<const W: usize>(
    k: usize,
    n: usize,
    a_rows: &[f32],
    panel: &[f32],
    c_rows: &mut [f32],
    j0: usize,
) {
    let mut arows: [&[f32]; MR] = [&[]; MR];
    for (r, row) in arows.iter_mut().enumerate() {
        *row = &a_rows[r * k..(r + 1) * k];
    }
    let mut acc = [[0.0f32; W]; MR];
    for (p, bc) in panel.chunks_exact(W).enumerate() {
        let bc: &[f32; W] = bc.try_into().unwrap();
        for r in 0..MR {
            let ar = arows[r][p];
            for (dst, &bv) in acc[r].iter_mut().zip(bc) {
                *dst = ar.mul_add(bv, *dst);
            }
        }
    }
    for (r, row_acc) in acc.iter().enumerate() {
        c_rows[r * n + j0..r * n + j0 + W].copy_from_slice(row_acc);
    }
}

/// Remainder region (`rows × width` at column `j0`): reference-style
/// streaming AXPY, which stays vector-friendly for skinny shapes (e.g.
/// batch-1 linear layers) where packed tiling would cost more than it
/// saves.
#[inline]
#[allow(clippy::too_many_arguments)] // kernel: dims + three operands + tile origin
fn axpy_block(
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    j0: usize,
    width: usize,
) {
    for r in 0..rows {
        let a_row = &a[r * k..(r + 1) * k];
        let c_row = &mut c[r * n + j0..r * n + j0 + width];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n + j0..p * n + j0 + width];
            for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                *dst = av.mul_add(bv, *dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Backend, Reference};
    use super::*;
    use crate::rng::Rng;

    fn random_vec(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference_across_shapes() {
        let mut rng = Rng::new(3);
        for &(m, k, n) in &[(1, 1, 1), (4, 16, 16), (5, 7, 19), (17, 33, 31), (64, 64, 64)] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut c_ref = vec![0.0f32; m * n];
            let mut c_blk = vec![0.0f32; m * n];
            Reference.gemm(m, k, n, &a, &b, &mut c_ref);
            Blocked.gemm(m, k, n, &a, &b, &mut c_blk);
            assert_close(&c_ref, &c_blk, "gemm");
        }
    }

    #[test]
    fn gemm_tn_nt_match_reference() {
        let mut rng = Rng::new(4);
        let (m, k, n) = (13, 21, 18);
        let a_tn = random_vec(k * m, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        Reference.gemm_tn(m, k, n, &a_tn, &b, &mut c_ref);
        Blocked.gemm_tn(m, k, n, &a_tn, &b, &mut c_blk);
        assert_close(&c_ref, &c_blk, "gemm_tn");
        let a = random_vec(m * k, &mut rng);
        let b_nt = random_vec(n * k, &mut rng);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        Reference.gemm_nt(m, k, n, &a, &b_nt, &mut c_ref);
        Blocked.gemm_nt(m, k, n, &a, &b_nt, &mut c_blk);
        assert_close(&c_ref, &c_blk, "gemm_nt");
    }

    #[test]
    fn degenerate_dims() {
        let mut c = vec![1.0f32; 6];
        Blocked.gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn transpose_roundtrip() {
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut t = Vec::new();
        transpose_into(&src, 3, 4, &mut t);
        let mut back = Vec::new();
        transpose_into(&t, 4, 3, &mut back);
        assert_eq!(src, back);
    }
}
