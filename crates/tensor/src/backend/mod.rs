//! Pluggable compute backends for the hot linear-algebra kernels.
//!
//! Every GEMM and convolution in the workspace dispatches through a
//! [`Backend`]: [`Reference`] keeps the original straightforward loops as a
//! correctness oracle, while [`Blocked`] provides register-tiled,
//! cache-aware kernels with scoped-thread data parallelism over output
//! rows and the batch dimension. Layers call [`active`], so swapping the
//! whole model's compute substrate is one call to [`set_backend`] (or the
//! `ECOFUSION_BACKEND` environment variable — `reference` or `blocked`).
//!
//! # Numerical contract
//!
//! Both backends accumulate every output element over the shared dimension
//! in the same (increasing) order and never split a single reduction
//! across threads, so each backend is individually deterministic on every
//! machine and thread count. They differ only in rounding: the blocked
//! kernels use fused multiply-adds (one rounding per multiply-add instead
//! of two). The parity suite in `crates/tensor/tests/prop_backend.rs`
//! bounds the divergence at `1e-4` across randomized shapes for matmul and
//! convolution forward + backward.

mod blocked;
mod reference;

pub use blocked::Blocked;
pub use reference::Reference;

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Selects one of the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Original scalar loops: the correctness oracle.
    Reference,
    /// Register-tiled, parallel kernels (the default).
    Blocked,
}

/// Shape parameters of a 2-D convolution (NCHW, square kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an `h × w` input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ho = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let wo = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (ho, wo)
    }

    /// Width of one im2col row: `C_in · k · k`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Gradients of one convolution backward pass.
#[derive(Debug)]
pub struct ConvGrads {
    /// Weight gradient, shape `(C_out, C_in·k·k)`.
    pub dw: Tensor,
    /// Bias gradient, shape `(C_out)`.
    pub db: Tensor,
    /// Input gradient, shape of the forward input.
    pub dx: Tensor,
}

/// A compute backend: the GEMM and convolution kernels everything above
/// the tensor layer runs on.
///
/// GEMM methods write into a caller-zeroed `c` buffer. Slices are
/// row-major; dimension names follow `C (m×n) = A · B` with shared
/// dimension `k`.
pub trait Backend: Send + Sync {
    /// Backend name for diagnostics and bench labels.
    fn name(&self) -> &'static str;

    /// `C (m×n) = A (m×k) · B (k×n)`.
    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C (m×n) = Aᵀ · B` where `A` is stored `(k×m)`.
    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C (m×n) = A · Bᵀ` where `B` is stored `(n×k)`.
    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// Convolution forward over NCHW input `x` with weight `(C_out,
    /// C_in·k·k)` and bias `(C_out)`. `scratch` is a caller-owned buffer
    /// backends may use to avoid per-call allocation (im2col columns).
    fn conv2d_forward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        bias: &[f32],
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
    ) -> Tensor;

    /// Convolution backward: gradients of weight, bias, and input given
    /// the forward input `x` and `grad_out` in NCHW layout.
    ///
    /// `cols_valid` promises that `scratch` still holds exactly what this
    /// backend's `conv2d_forward` left there for the same `x` — backends
    /// that lower to columns may then skip recomputing the lowering.
    fn conv2d_backward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
        cols_valid: bool,
    ) -> ConvGrads;

    /// Pre-bias convolution output in GEMM row layout `(N·Ho·Wo, C_out)`:
    /// exactly this backend's [`Backend::conv2d_forward`] minus the bias
    /// add and the NCHW rearrangement, so a caller-supplied write-back
    /// epilogue (bias, folded batch-norm, ReLU) reproduces the eager
    /// layer chain bit for bit. `x` is NCHW data with `dims = [n, c, h,
    /// w]`; `cols` and `rows` are caller-owned scratch, cleared and
    /// resized (no steady-state allocation once capacity is established).
    ///
    /// The default lowers with [`im2col`] and runs [`Backend::gemm_nt`] —
    /// the blocked forward path. Backends whose `conv2d_forward` computes
    /// a different reduction (e.g. the direct reference loops) must
    /// override so the rows match their own forward exactly.
    fn conv2d_rows(
        &self,
        x: &[f32],
        dims: [usize; 4],
        weight: &Tensor,
        spec: &ConvSpec,
        cols: &mut Vec<f32>,
        rows: &mut Vec<f32>,
    ) {
        let [n, _, h, w] = dims;
        let (ho, wo) = spec.out_size(h, w);
        let rows_n = n * ho * wo;
        let ck = spec.patch_len();
        im2col_slice(x, dims, spec, cols);
        rows.clear();
        rows.resize(rows_n * spec.out_channels, 0.0);
        self.gemm_nt(rows_n, ck, spec.out_channels, cols, weight.data(), rows);
    }

    /// [`Backend::conv2d_rows`] with the output transposed to
    /// `(C_out, N·Ho·Wo)`: one contiguous run of positions per output
    /// channel, so a fused write-back epilogue reads and writes
    /// contiguously (no strided rows→NCHW gather). Bit-identical to
    /// `conv2d_rows` element for element — the default lowers to the
    /// transposed column layout ([`im2col_t`], pure data movement) and
    /// accumulates each output element with the same ascending-k
    /// `mul_add` chain as the packed GEMM microkernels (f32
    /// multiplication commutes exactly, so swapping the operand roles
    /// changes no bits).
    fn conv2d_rows_t(
        &self,
        x: &[f32],
        dims: [usize; 4],
        weight: &Tensor,
        spec: &ConvSpec,
        cols: &mut Vec<f32>,
        rows: &mut Vec<f32>,
    ) {
        let [n, _, h, w] = dims;
        let (ho, wo) = spec.out_size(h, w);
        let rows_n = n * ho * wo;
        let ck = spec.patch_len();
        im2col_t(x, 0.0f32, dims, spec, cols);
        rows.clear();
        rows.resize(spec.out_channels * rows_n, 0.0);
        gemm_tn_f32(spec.out_channels, ck, rows_n, weight.data(), cols, rows);
    }
}

static REFERENCE: Reference = Reference;
static BLOCKED: Blocked = Blocked;

/// The backend instance for a kind (useful for benches and parity tests
/// that must pin a backend regardless of the global selection).
pub fn get(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Reference => &REFERENCE,
        BackendKind::Blocked => &BLOCKED,
    }
}

const KIND_UNSET: u8 = 0;
const KIND_REFERENCE: u8 = 1;
const KIND_BLOCKED: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(KIND_UNSET);
static ENV_DEFAULT: OnceLock<BackendKind> = OnceLock::new();

fn env_default() -> BackendKind {
    *ENV_DEFAULT.get_or_init(|| match std::env::var("ECOFUSION_BACKEND").as_deref() {
        Ok("reference") | Ok("ref") => BackendKind::Reference,
        Ok("blocked") | Err(_) => BackendKind::Blocked,
        Ok(other) => {
            eprintln!("warning: unknown ECOFUSION_BACKEND `{other}`, using blocked");
            BackendKind::Blocked
        }
    })
}

/// The globally selected backend kind: [`set_backend`] if called,
/// otherwise `ECOFUSION_BACKEND`, otherwise [`BackendKind::Blocked`].
pub fn backend_kind() -> BackendKind {
    match OVERRIDE.load(Ordering::Relaxed) {
        KIND_REFERENCE => BackendKind::Reference,
        KIND_BLOCKED => BackendKind::Blocked,
        _ => env_default(),
    }
}

/// Selects the process-wide backend. Affects every subsequent tensor and
/// layer operation; typically called once at startup.
pub fn set_backend(kind: BackendKind) {
    let v = match kind {
        BackendKind::Reference => KIND_REFERENCE,
        BackendKind::Blocked => KIND_BLOCKED,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active backend instance.
pub fn active() -> &'static dyn Backend {
    get(backend_kind())
}

// ---------------------------------------------------------------------------
// Shared lowering helpers (used by the GEMM-based backend; the reference
// backend convolves directly and never materializes columns)
// ---------------------------------------------------------------------------

/// Lowers NCHW input to a `(N·Ho·Wo, C_in·k·k)` column matrix in `cols`
/// (resized and fully overwritten; padding positions become zeros).
pub(crate) fn im2col(x: &Tensor, spec: &ConvSpec, cols: &mut Vec<f32>) {
    let (n, c, h, w) = dims4(x);
    im2col_slice(x.data(), [n, c, h, w], spec, cols);
}

/// [`im2col`] over raw NCHW data (`dims = [n, c, h, w]`) — the compiled
/// plan executor feeds arena slices that never materialize a `Tensor`.
pub(crate) fn im2col_slice(xdata: &[f32], dims: [usize; 4], spec: &ConvSpec, cols: &mut Vec<f32>) {
    im2col_sweep(xdata, 0.0f32, dims, spec, cols);
}

/// Transposed im2col: `(C_in·k·k, N·Ho·Wo)` — one contiguous run of
/// output positions per patch element. At stride 1 (every conv in the
/// model) each run is a clipped copy of an input row, so the whole
/// lowering is memcpys plus edge zeroing; the patch-major layouts need a
/// strided write or gather per element. Pure data movement, fully
/// overwritten each call.
pub(crate) fn im2col_t<T: Copy>(
    xdata: &[T],
    zero: T,
    dims: [usize; 4],
    spec: &ConvSpec,
    cols: &mut Vec<T>,
) {
    let [n, c, h, w] = dims;
    let (ho, wo) = spec.out_size(h, w);
    let m = n * ho * wo;
    let (k, s, pd) = (spec.kernel, spec.stride, spec.padding);
    cols.clear();
    cols.resize(spec.patch_len() * m, zero);
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let prow = &mut cols[((ci * k + ky) * k + kx) * m..][..m];
                let off = kx as isize - pd as isize;
                // ox span with an in-bounds column: 0 <= ox·s + off < w.
                let ox_lo = if off < 0 { ((-off) as usize).div_ceil(s) } else { 0 }.min(wo);
                let ox_hi = if off >= w as isize {
                    0
                } else {
                    (((w as isize - 1 - off) as usize) / s + 1).min(wo)
                };
                for b in 0..n {
                    let ch_base = (b * c + ci) * h * w;
                    for oy in 0..ho {
                        let iy = (oy * s + ky) as isize - pd as isize;
                        let drow = &mut prow[(b * ho + oy) * wo..(b * ho + oy + 1) * wo];
                        if iy < 0 || iy >= h as isize || ox_lo >= ox_hi {
                            drow.fill(zero);
                            continue;
                        }
                        drow[..ox_lo].fill(zero);
                        drow[ox_hi..].fill(zero);
                        let src = ch_base + iy as usize * w;
                        if s == 1 {
                            // ox_lo·1 + off ≥ 0 by construction of ox_lo.
                            let ix0 = (ox_lo as isize + off) as usize;
                            drow[ox_lo..ox_hi]
                                .copy_from_slice(&xdata[src + ix0..src + ix0 + (ox_hi - ox_lo)]);
                        } else {
                            for (d, ox) in drow[ox_lo..ox_hi].iter_mut().zip(ox_lo..) {
                                *d = xdata[src + ((ox * s) as isize + off) as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `C (co×m) = A (co×ck) · Bᵀ` where B is the transposed column matrix
/// from [`im2col_t`] (`ck×m`): `c[i][j] = Σ_p a[i·ck+p] · bt[p·m+j]`,
/// accumulated p-ascending with one `mul_add` chain per element from
/// zero — the identical chain the packed microkernels run, so the
/// result is bit-identical to `gemm_nt` on the swapped operands.
/// Register-tiled `IR_T×JR_T` so each B row chunk is read once per
/// channel group (not once per channel) and needs no packing: the
/// transposed layout is already contiguous along j. `c` must be
/// caller-zeroed (only the sub-tile tails read it as the accumulator
/// start).
fn gemm_tn_f32(co: usize, ck: usize, m: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    debug_assert!(a.len() >= co * ck && bt.len() >= ck * m && c.len() >= co * m);
    let jm = m - m % JR_T;
    let mut i0 = 0;
    while i0 < co {
        let ir = IR_T.min(co - i0);
        let a_grp = &a[i0 * ck..(i0 + ir) * ck];
        let c_grp = &mut c[i0 * m..(i0 + ir) * m];
        let mut j0 = 0;
        while j0 < jm {
            // Full-height groups go through the const-height tile so the
            // accumulator block stays in registers; only the final
            // sub-8-channel group takes the runtime-height fallback.
            if ir == IR_T {
                tile_tn_f32::<IR_T>(ck, m, a_grp, bt, c_grp, j0);
            } else {
                tile_tn_f32_partial(ir, ck, m, a_grp, bt, c_grp, j0);
            }
            j0 += JR_T;
        }
        // Sub-tile j tail: scalar dots, the same ascending-p chain.
        for ii in 0..ir {
            let arow = &a_grp[ii * ck..(ii + 1) * ck];
            for j in jm..m {
                let mut acc = c_grp[ii * m + j];
                for (p, &av) in arow.iter().enumerate() {
                    acc = av.mul_add(bt[p * m + j], acc);
                }
                c_grp[ii * m + j] = acc;
            }
        }
        i0 += ir;
    }
}

/// Channel-group height and position-tile width of the transposed-GEMM
/// register tiles (f32 and int8): an `8×16` accumulator block, the same
/// register budget as the packed microkernel's `MR×NR` tile.
pub(crate) const IR_T: usize = 8;
pub(crate) const JR_T: usize = 16;

/// One `IR×JR_T` tile of [`gemm_tn_f32`]: broadcast-A times contiguous-B
/// rows, accumulators in registers (the const height lets the row loop
/// fully unroll), p ascending from zero.
#[inline]
fn tile_tn_f32<const IR: usize>(
    ck: usize,
    m: usize,
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    j0: usize,
) {
    let mut acc = [[0.0f32; JR_T]; IR];
    for p in 0..ck {
        let b = &bt[p * m + j0..p * m + j0 + JR_T];
        for ii in 0..IR {
            let av = a[ii * ck + p];
            for (x, &bv) in acc[ii].iter_mut().zip(b) {
                *x = av.mul_add(bv, *x);
            }
        }
    }
    for (ii, accr) in acc.iter().enumerate() {
        c[ii * m + j0..ii * m + j0 + JR_T].copy_from_slice(accr);
    }
}

/// Runtime-height variant of [`tile_tn_f32`] for the sub-`IR_T` channel
/// tail — identical per-element accumulation chain.
fn tile_tn_f32_partial(
    ir: usize,
    ck: usize,
    m: usize,
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    j0: usize,
) {
    let mut acc = [[0.0f32; JR_T]; IR_T];
    for p in 0..ck {
        let b = &bt[p * m + j0..p * m + j0 + JR_T];
        for (ii, accr) in acc[..ir].iter_mut().enumerate() {
            let av = a[ii * ck + p];
            for (x, &bv) in accr.iter_mut().zip(b) {
                *x = av.mul_add(bv, *x);
            }
        }
    }
    for (ii, accr) in acc[..ir].iter().enumerate() {
        c[ii * m + j0..ii * m + j0 + JR_T].copy_from_slice(accr);
    }
}

/// Shared im2col for the f32 and int8 lowerings. Pure data movement —
/// the emitted matrix is element-for-element the naive lowering, so the
/// downstream GEMM sees identical values (bit-identity is untouched).
/// Every position of the matrix is written (copies or explicit padding
/// zeros), so the buffer is reused across calls without a full memset.
///
/// Two layouts of the same loop nest, picked by patch width:
/// * narrow patches (≲ one cache line): column sweep — contiguous source
///   reads, short-stride writes;
/// * wide patches: patch-major — each patch's destination row is
///   contiguous, with a branch-free interior fast path (const-k copies)
///   and per-element clipping only on boundary patches.
pub(crate) fn im2col_sweep<T: Copy>(
    xdata: &[T],
    zero: T,
    dims: [usize; 4],
    spec: &ConvSpec,
    cols: &mut Vec<T>,
) {
    if spec.patch_len() * std::mem::size_of::<T>() > 64 && spec.kernel > 1 {
        im2col_patches(xdata, zero, dims, spec, cols);
    } else {
        im2col_columns(xdata, zero, dims, spec, cols);
    }
}

/// Column-sweep layout: for each patch-column index `(ci, ky, kx)` the
/// valid output positions along a row form one contiguous source span,
/// so the inner loop is a branch-free contiguous read / strided write.
fn im2col_columns<T: Copy>(
    xdata: &[T],
    zero: T,
    dims: [usize; 4],
    spec: &ConvSpec,
    cols: &mut Vec<T>,
) {
    let [n, c, h, w] = dims;
    let (ho, wo) = spec.out_size(h, w);
    let k = spec.kernel;
    let s = spec.stride;
    let p = spec.padding;
    let cols_w = spec.patch_len();
    cols.resize(n * ho * wo * cols_w, zero);
    // Zero a strided patch-column range [ox_a, ox_b).
    let zero_range = |cols: &mut [T], base: usize, ox_a: usize, ox_b: usize| {
        if ox_a < ox_b {
            for o in cols[base + ox_a * cols_w..].iter_mut().step_by(cols_w).take(ox_b - ox_a) {
                *o = zero;
            }
        }
    };
    for b in 0..n {
        for oy in 0..ho {
            let iy0 = (oy * s) as isize - p as isize;
            let row0 = (b * ho + oy) * wo * cols_w;
            for ci in 0..c {
                let ch_base = (b * c + ci) * h * w;
                let cc_base = ci * k * k;
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        // Whole kernel row is padding for this oy.
                        for kx in 0..k {
                            zero_range(cols, row0 + cc_base + ky * k + kx, 0, wo);
                        }
                        continue;
                    }
                    let src = &xdata[ch_base + iy as usize * w..ch_base + (iy as usize + 1) * w];
                    for kx in 0..k {
                        // Source column ix = ox·s + off; valid while 0 ≤ ix < w.
                        let off = kx as isize - p as isize;
                        let base = row0 + cc_base + ky * k + kx;
                        let ox_lo = if off >= 0 { 0 } else { ((-off) as usize).div_ceil(s) };
                        let max_ix = w as isize - 1 - off;
                        if ox_lo >= wo || max_ix < (ox_lo * s) as isize {
                            zero_range(cols, base, 0, wo);
                            continue;
                        }
                        let ox_hi = (max_ix as usize / s + 1).min(wo);
                        zero_range(cols, base, 0, ox_lo);
                        zero_range(cols, base, ox_hi, wo);
                        let ix_lo = (ox_lo * s + kx) - p;
                        let dst = cols[base + ox_lo * cols_w..].iter_mut().step_by(cols_w);
                        if s == 1 {
                            for (o, &v) in dst.zip(&src[ix_lo..ix_lo + (ox_hi - ox_lo)]) {
                                *o = v;
                            }
                        } else {
                            let srcs = src[ix_lo..].iter().step_by(s);
                            for (o, &v) in dst.take(ox_hi - ox_lo).zip(srcs) {
                                *o = v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Interior patch copy with a compile-time kernel size so the `K`-wide
/// row copies lower to straight-line moves instead of `memcpy` calls.
#[inline]
#[allow(clippy::too_many_arguments)] // hot-loop geometry scalars, not state
fn patch_interior<T: Copy, const K: usize>(
    x: &[T],
    dst: &mut [T],
    c: usize,
    hw: usize,
    bc: usize,
    iy0: usize,
    ix0: usize,
    w: usize,
) {
    for ci in 0..c {
        let sbase = (bc + ci) * hw + iy0 * w + ix0;
        let drow = &mut dst[ci * K * K..(ci + 1) * K * K];
        let srows = x[sbase..sbase + (K - 1) * w + K].chunks(w);
        for (d, s) in drow.chunks_exact_mut(K).zip(srows) {
            d.copy_from_slice(&s[..K]);
        }
    }
}

/// Patch-major layout for wide patches: each patch's destination row is
/// contiguous; interior patches take the branch-free const-k fast path,
/// boundary patches clip per kernel row and zero the clipped positions.
fn im2col_patches<T: Copy>(
    xdata: &[T],
    zero: T,
    dims: [usize; 4],
    spec: &ConvSpec,
    cols: &mut Vec<T>,
) {
    let [n, c, h, w] = dims;
    let (ho, wo) = spec.out_size(h, w);
    let k = spec.kernel;
    let s = spec.stride;
    let p = spec.padding;
    let cols_w = spec.patch_len();
    cols.resize(n * ho * wo * cols_w, zero);
    let hw = h * w;
    for b in 0..n {
        for oy in 0..ho {
            let iy0 = (oy * s) as isize - p as isize;
            let interior_y = iy0 >= 0 && iy0 + k as isize <= h as isize;
            for ox in 0..wo {
                let ix0 = (ox * s) as isize - p as isize;
                let row = ((b * ho + oy) * wo + ox) * cols_w;
                let dst = &mut cols[row..row + cols_w];
                if interior_y && ix0 >= 0 && ix0 + k as isize <= w as isize {
                    let (iy0, ix0) = (iy0 as usize, ix0 as usize);
                    match k {
                        3 => patch_interior::<T, 3>(xdata, dst, c, hw, b * c, iy0, ix0, w),
                        5 => patch_interior::<T, 5>(xdata, dst, c, hw, b * c, iy0, ix0, w),
                        _ => {
                            for ci in 0..c {
                                let ch = (b * c + ci) * hw;
                                let cb = ci * k * k;
                                for ky in 0..k {
                                    let s0 = ch + (iy0 + ky) * w + ix0;
                                    dst[cb + ky * k..cb + ky * k + k]
                                        .copy_from_slice(&xdata[s0..s0 + k]);
                                }
                            }
                        }
                    }
                    continue;
                }
                // Boundary patch: clip per kernel row, zero what's clipped.
                let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                for ci in 0..c {
                    let ch = (b * c + ci) * hw;
                    let cb = ci * k * k;
                    for ky in 0..k {
                        let d0 = cb + ky * k;
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            dst[d0..d0 + k].fill(zero);
                            continue;
                        }
                        let srow = ch + iy as usize * w;
                        for v in &mut dst[d0..d0 + kx_lo] {
                            *v = zero;
                        }
                        for v in &mut dst[d0 + kx_hi..d0 + k] {
                            *v = zero;
                        }
                        if kx_lo < kx_hi {
                            let s0 = (srow as isize + ix0 + kx_lo as isize) as usize;
                            dst[d0 + kx_lo..d0 + kx_hi]
                                .copy_from_slice(&xdata[s0..s0 + (kx_hi - kx_lo)]);
                        }
                    }
                }
            }
        }
    }
}

/// Scatters column-matrix gradients back to NCHW input layout (inverse of
/// [`im2col`], accumulating where patches overlap).
pub(crate) fn col2im(cols_grad: &[f32], spec: &ConvSpec, in_shape: [usize; 4]) -> Tensor {
    let [n, c, h, w] = in_shape;
    let (ho, wo) = spec.out_size(h, w);
    let k = spec.kernel;
    let cols_w = spec.patch_len();
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let dxd = dx.data_mut();
    for b in 0..n {
        for oy in 0..ho {
            let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
            for ox in 0..wo {
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let row = ((b * ho + oy) * wo + ox) * cols_w;
                for ci in 0..c {
                    let ch_base = (b * c + ci) * h * w;
                    let col_base = row + ci * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_row = ch_base + iy as usize * w;
                        let src_row = col_base + ky * k;
                        let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                        let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                        for kx in kx_lo..kx_hi {
                            dxd[dst_row + (ix0 + kx as isize) as usize] += cols_grad[src_row + kx];
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Rearranges GEMM row layout `(N·Ho·Wo, C_out)` into NCHW, adding bias.
pub(crate) fn rows_to_nchw(
    rows: &[f32],
    bias: &[f32],
    n: usize,
    co: usize,
    ho: usize,
    wo: usize,
) -> Tensor {
    let mut y = Tensor::zeros(&[n, co, ho, wo]);
    let yd = y.data_mut();
    for b in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let r = ((b * ho + oy) * wo + ox) * co;
                for c in 0..co {
                    yd[((b * co + c) * ho + oy) * wo + ox] = rows[r + c] + bias[c];
                }
            }
        }
    }
    y
}

/// Rearranges an NCHW gradient into GEMM row layout `(N·Ho·Wo, C_out)`.
pub(crate) fn nchw_to_rows(
    grad_out: &Tensor,
    n: usize,
    co: usize,
    ho: usize,
    wo: usize,
) -> Vec<f32> {
    let mut rows = vec![0.0f32; n * ho * wo * co];
    let od = grad_out.data();
    for b in 0..n {
        for c in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    rows[((b * ho + oy) * wo + ox) * co + c] =
                        od[((b * co + c) * ho + oy) * wo + ox];
                }
            }
        }
    }
    rows
}

/// The `[N, C, H, W]` dimensions of a 4-D tensor.
pub(crate) fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    debug_assert_eq!(s.len(), 4, "expected NCHW tensor");
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn backend_selection_roundtrip() {
        let before = backend_kind();
        set_backend(BackendKind::Reference);
        assert_eq!(backend_kind(), BackendKind::Reference);
        assert_eq!(active().name(), "reference");
        set_backend(BackendKind::Blocked);
        assert_eq!(backend_kind(), BackendKind::Blocked);
        assert_eq!(active().name(), "blocked");
        set_backend(before);
    }

    #[test]
    fn conv_spec_geometry() {
        let spec = ConvSpec { in_channels: 3, out_channels: 8, kernel: 3, stride: 2, padding: 1 };
        assert_eq!(spec.out_size(8, 8), (4, 4));
        assert_eq!(spec.patch_len(), 27);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), g> == <x, col2im(g)>: the two lowerings must be
        // adjoint linear maps for conv backward to be the true gradient.
        let mut rng = Rng::new(5);
        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 2, padding: 1 };
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let mut cols = Vec::new();
        im2col(&x, &spec, &mut cols);
        let g: Vec<f32> = (0..cols.len()).map(|i| ((i * 37) % 11) as f32 - 5.0).collect();
        let gx = col2im(&g, &spec, [2, 2, 5, 5]);
        let lhs: f64 = cols.iter().zip(&g).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.data().iter().zip(gx.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
