//! Pluggable compute backends for the hot linear-algebra kernels.
//!
//! Every GEMM and convolution in the workspace dispatches through a
//! [`Backend`]: [`Reference`] keeps the original straightforward loops as a
//! correctness oracle, while [`Blocked`] provides register-tiled,
//! cache-aware kernels with scoped-thread data parallelism over output
//! rows and the batch dimension. Layers call [`active`], so swapping the
//! whole model's compute substrate is one call to [`set_backend`] (or the
//! `ECOFUSION_BACKEND` environment variable — `reference` or `blocked`).
//!
//! # Numerical contract
//!
//! Both backends accumulate every output element over the shared dimension
//! in the same (increasing) order and never split a single reduction
//! across threads, so each backend is individually deterministic on every
//! machine and thread count. They differ only in rounding: the blocked
//! kernels use fused multiply-adds (one rounding per multiply-add instead
//! of two). The parity suite in `crates/tensor/tests/prop_backend.rs`
//! bounds the divergence at `1e-4` across randomized shapes for matmul and
//! convolution forward + backward.

mod blocked;
mod reference;

pub use blocked::Blocked;
pub use reference::Reference;

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Selects one of the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Original scalar loops: the correctness oracle.
    Reference,
    /// Register-tiled, parallel kernels (the default).
    Blocked,
}

/// Shape parameters of a 2-D convolution (NCHW, square kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an `h × w` input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ho = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let wo = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (ho, wo)
    }

    /// Width of one im2col row: `C_in · k · k`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Gradients of one convolution backward pass.
#[derive(Debug)]
pub struct ConvGrads {
    /// Weight gradient, shape `(C_out, C_in·k·k)`.
    pub dw: Tensor,
    /// Bias gradient, shape `(C_out)`.
    pub db: Tensor,
    /// Input gradient, shape of the forward input.
    pub dx: Tensor,
}

/// A compute backend: the GEMM and convolution kernels everything above
/// the tensor layer runs on.
///
/// GEMM methods write into a caller-zeroed `c` buffer. Slices are
/// row-major; dimension names follow `C (m×n) = A · B` with shared
/// dimension `k`.
pub trait Backend: Send + Sync {
    /// Backend name for diagnostics and bench labels.
    fn name(&self) -> &'static str;

    /// `C (m×n) = A (m×k) · B (k×n)`.
    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C (m×n) = Aᵀ · B` where `A` is stored `(k×m)`.
    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C (m×n) = A · Bᵀ` where `B` is stored `(n×k)`.
    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]);

    /// Convolution forward over NCHW input `x` with weight `(C_out,
    /// C_in·k·k)` and bias `(C_out)`. `scratch` is a caller-owned buffer
    /// backends may use to avoid per-call allocation (im2col columns).
    fn conv2d_forward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        bias: &[f32],
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
    ) -> Tensor;

    /// Convolution backward: gradients of weight, bias, and input given
    /// the forward input `x` and `grad_out` in NCHW layout.
    ///
    /// `cols_valid` promises that `scratch` still holds exactly what this
    /// backend's `conv2d_forward` left there for the same `x` — backends
    /// that lower to columns may then skip recomputing the lowering.
    fn conv2d_backward(
        &self,
        x: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: &ConvSpec,
        scratch: &mut Vec<f32>,
        cols_valid: bool,
    ) -> ConvGrads;
}

static REFERENCE: Reference = Reference;
static BLOCKED: Blocked = Blocked;

/// The backend instance for a kind (useful for benches and parity tests
/// that must pin a backend regardless of the global selection).
pub fn get(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Reference => &REFERENCE,
        BackendKind::Blocked => &BLOCKED,
    }
}

const KIND_UNSET: u8 = 0;
const KIND_REFERENCE: u8 = 1;
const KIND_BLOCKED: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(KIND_UNSET);
static ENV_DEFAULT: OnceLock<BackendKind> = OnceLock::new();

fn env_default() -> BackendKind {
    *ENV_DEFAULT.get_or_init(|| match std::env::var("ECOFUSION_BACKEND").as_deref() {
        Ok("reference") | Ok("ref") => BackendKind::Reference,
        Ok("blocked") | Err(_) => BackendKind::Blocked,
        Ok(other) => {
            eprintln!("warning: unknown ECOFUSION_BACKEND `{other}`, using blocked");
            BackendKind::Blocked
        }
    })
}

/// The globally selected backend kind: [`set_backend`] if called,
/// otherwise `ECOFUSION_BACKEND`, otherwise [`BackendKind::Blocked`].
pub fn backend_kind() -> BackendKind {
    match OVERRIDE.load(Ordering::Relaxed) {
        KIND_REFERENCE => BackendKind::Reference,
        KIND_BLOCKED => BackendKind::Blocked,
        _ => env_default(),
    }
}

/// Selects the process-wide backend. Affects every subsequent tensor and
/// layer operation; typically called once at startup.
pub fn set_backend(kind: BackendKind) {
    let v = match kind {
        BackendKind::Reference => KIND_REFERENCE,
        BackendKind::Blocked => KIND_BLOCKED,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active backend instance.
pub fn active() -> &'static dyn Backend {
    get(backend_kind())
}

// ---------------------------------------------------------------------------
// Shared lowering helpers (used by the GEMM-based backend; the reference
// backend convolves directly and never materializes columns)
// ---------------------------------------------------------------------------

/// Lowers NCHW input to a `(N·Ho·Wo, C_in·k·k)` column matrix in `cols`
/// (resized and fully overwritten; padding positions become zeros).
pub(crate) fn im2col(x: &Tensor, spec: &ConvSpec, cols: &mut Vec<f32>) {
    let (n, c, h, w) = dims4(x);
    let (ho, wo) = spec.out_size(h, w);
    let k = spec.kernel;
    let cols_w = spec.patch_len();
    cols.clear();
    cols.resize(n * ho * wo * cols_w, 0.0);
    let xdata = x.data();
    for b in 0..n {
        for oy in 0..ho {
            let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
            for ox in 0..wo {
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let row = ((b * ho + oy) * wo + ox) * cols_w;
                for ci in 0..c {
                    let ch_base = (b * c + ci) * h * w;
                    let col_base = row + ci * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src_row = ch_base + iy as usize * w;
                        let dst_row = col_base + ky * k;
                        // Contiguous kx span: clip against [0, w).
                        let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                        let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                        for kx in kx_lo..kx_hi {
                            cols[dst_row + kx] = xdata[src_row + (ix0 + kx as isize) as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters column-matrix gradients back to NCHW input layout (inverse of
/// [`im2col`], accumulating where patches overlap).
pub(crate) fn col2im(cols_grad: &[f32], spec: &ConvSpec, in_shape: [usize; 4]) -> Tensor {
    let [n, c, h, w] = in_shape;
    let (ho, wo) = spec.out_size(h, w);
    let k = spec.kernel;
    let cols_w = spec.patch_len();
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let dxd = dx.data_mut();
    for b in 0..n {
        for oy in 0..ho {
            let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
            for ox in 0..wo {
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let row = ((b * ho + oy) * wo + ox) * cols_w;
                for ci in 0..c {
                    let ch_base = (b * c + ci) * h * w;
                    let col_base = row + ci * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_row = ch_base + iy as usize * w;
                        let src_row = col_base + ky * k;
                        let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                        let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                        for kx in kx_lo..kx_hi {
                            dxd[dst_row + (ix0 + kx as isize) as usize] += cols_grad[src_row + kx];
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Rearranges GEMM row layout `(N·Ho·Wo, C_out)` into NCHW, adding bias.
pub(crate) fn rows_to_nchw(
    rows: &[f32],
    bias: &[f32],
    n: usize,
    co: usize,
    ho: usize,
    wo: usize,
) -> Tensor {
    let mut y = Tensor::zeros(&[n, co, ho, wo]);
    let yd = y.data_mut();
    for b in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let r = ((b * ho + oy) * wo + ox) * co;
                for c in 0..co {
                    yd[((b * co + c) * ho + oy) * wo + ox] = rows[r + c] + bias[c];
                }
            }
        }
    }
    y
}

/// Rearranges an NCHW gradient into GEMM row layout `(N·Ho·Wo, C_out)`.
pub(crate) fn nchw_to_rows(
    grad_out: &Tensor,
    n: usize,
    co: usize,
    ho: usize,
    wo: usize,
) -> Vec<f32> {
    let mut rows = vec![0.0f32; n * ho * wo * co];
    let od = grad_out.data();
    for b in 0..n {
        for c in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    rows[((b * ho + oy) * wo + ox) * co + c] =
                        od[((b * co + c) * ho + oy) * wo + ox];
                }
            }
        }
    }
    rows
}

/// The `[N, C, H, W]` dimensions of a 4-D tensor.
pub(crate) fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    debug_assert_eq!(s.len(), 4, "expected NCHW tensor");
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn backend_selection_roundtrip() {
        let before = backend_kind();
        set_backend(BackendKind::Reference);
        assert_eq!(backend_kind(), BackendKind::Reference);
        assert_eq!(active().name(), "reference");
        set_backend(BackendKind::Blocked);
        assert_eq!(backend_kind(), BackendKind::Blocked);
        assert_eq!(active().name(), "blocked");
        set_backend(before);
    }

    #[test]
    fn conv_spec_geometry() {
        let spec = ConvSpec { in_channels: 3, out_channels: 8, kernel: 3, stride: 2, padding: 1 };
        assert_eq!(spec.out_size(8, 8), (4, 4));
        assert_eq!(spec.patch_len(), 27);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), g> == <x, col2im(g)>: the two lowerings must be
        // adjoint linear maps for conv backward to be the true gradient.
        let mut rng = Rng::new(5);
        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 2, padding: 1 };
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let mut cols = Vec::new();
        im2col(&x, &spec, &mut cols);
        let g: Vec<f32> = (0..cols.len()).map(|i| ((i * 37) % 11) as f32 - 5.0).collect();
        let gx = col2im(&g, &spec, [2, 2, 5, 5]);
        let lhs: f64 = cols.iter().zip(&g).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.data().iter().zip(gx.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
