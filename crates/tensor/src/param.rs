//! Trainable parameter storage.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable tensor together with its gradient and optimizer state.
///
/// Embedding the optimizer moments in the parameter keeps the optimizer
/// itself stateless, which avoids fragile param-to-state keying when models
/// are composed of many heterogeneous modules (stems, branches, gates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// First-moment buffer (SGD momentum / Adam m).
    pub m: Tensor,
    /// Second-moment buffer (Adam v).
    pub v: Tensor,
}

impl Param {
    /// Wraps an initial value with zeroed gradient and moments.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let m = Tensor::zeros(value.shape());
        let v = Tensor::zeros(value.shape());
        Param { value, grad, m, v }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_moments() {
        let p = Param::new(Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.m.sum(), 0.0);
        assert_eq!(p.v.sum(), 0.0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[3]));
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
