//! Minimal CPU tensor and neural-network substrate.
//!
//! The EcoFusion paper builds its stems, branches, and gates out of PyTorch
//! `Conv2d`/`Linear`/attention layers trained with SGD. The Rust DNN
//! ecosystem is thin (reproduction band 2/5), so this crate provides the
//! smallest substrate that supports the paper end-to-end, implemented from
//! scratch:
//!
//! * [`Tensor`] — dense `f32` tensor in NCHW layout with the linear-algebra
//!   kernels the layers need (matmul, im2col, reductions).
//! * [`layer`] — neural-network layers with hand-written backpropagation:
//!   [`Conv2d`], [`Linear`], [`ReLU`], [`MaxPool2d`], [`BatchNorm2d`],
//!   [`SelfAttention2d`], and the [`Sequential`] container.
//! * [`loss`] — the paper's loss functions: softmax cross-entropy and smooth
//!   L1 (from Faster R-CNN) plus binary cross-entropy for objectness.
//! * [`optim`] — [`optim::Sgd`] (momentum + weight decay) and
//!   [`optim::Adam`].
//! * [`rng`] — seeded RNG with Box–Muller normal sampling so every
//!   experiment is reproducible.
//! * [`graph`] — the fused-operator graph compiler: lowers a trained
//!   [`Sequential`] (or int8 [`QuantPipe`]) into a [`CompiledPlan`] of
//!   fused steps that execute bit-identically to the eager eval path with
//!   zero steady-state allocations.
//!
//! Gradients of every layer are validated against finite differences in the
//! test suite (see `tests` in each module and `proptest` suites).
//!
//! # Example
//!
//! ```
//! use ecofusion_tensor::{layer::{Layer, Linear, ReLU, Sequential}, loss,
//!                        optim::{Optimizer, Sgd}, rng::Rng, Tensor};
//!
//! let mut rng = Rng::new(7);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, &mut rng)),
//!     Box::new(ReLU::new()),
//!     Box::new(Linear::new(16, 3, &mut rng)),
//! ]);
//! let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
//! let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! let mut opt = Sgd::new(0.1, 0.9, 0.0);
//! for _ in 0..50 {
//!     let logits = net.forward(&x, true);
//!     let (l, grad) = loss::softmax_cross_entropy(&logits, &labels);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net);
//!     let _ = l;
//! }
//! ```

pub mod backend;
pub mod graph;
pub mod init;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod param;
pub mod quant;
pub mod rng;
pub mod serialize;
pub mod tensor;

pub use backend::{Backend, BackendKind};
pub use graph::{
    CompileError, CompiledPlan, PlanBuilder, PlanCache, PlanCacheStats, PlanKey, PlanPrecision,
};
pub use layer::{
    BatchNorm2d, Conv2d, Layer, LeakyReLU, Linear, MaxPool2d, ReLU, SelfAttention2d, Sequential,
    Sigmoid,
};
pub use param::Param;
pub use quant::{QuantConv2d, QuantPipe, QuantStage, QuantizeError};
pub use rng::Rng;
pub use tensor::Tensor;
