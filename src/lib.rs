//! # EcoFusion
//!
//! A Rust reproduction of *"EcoFusion: Energy-Aware Adaptive Sensor Fusion
//! for Efficient Autonomous Vehicle Perception"* (DAC 2022).
//!
//! This facade crate re-exports the public API of every workspace crate so a
//! downstream user can depend on `ecofusion` alone.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ecofusion::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a synthetic RADIATE-like dataset, train the model, and run
//! // the adaptive pipeline on one frame.
//! let spec = DatasetSpec::small(42);
//! let dataset = Dataset::generate(&spec);
//! let mut trainer = Trainer::new(TrainConfig::fast_demo(), 42);
//! let mut model = trainer.train(&dataset)?;
//! let frame = &dataset.test()[0];
//! let out = model.infer(frame, &InferenceOptions::new(0.01, 0.5))?;
//! println!("selected {}, {} detections, {:.3} J",
//!          out.selected_label, out.detections.len(), out.energy_joules());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios.
//!
//! ## Performance & backends
//!
//! All linear algebra dispatches through a pluggable compute backend
//! ([`tensor::backend`]): `Reference` keeps the original scalar loops as a
//! correctness oracle, `Blocked` (the default) provides register-tiled FMA
//! GEMM kernels, im2col+GEMM convolution with scratch reuse, and
//! scoped-thread parallelism. Select per process:
//!
//! ```
//! use ecofusion::tensor::backend::{self, BackendKind};
//!
//! // The slow-but-obviously-correct oracle...
//! backend::set_backend(BackendKind::Reference);
//! assert_eq!(backend::active().name(), "reference");
//! // ...and back to the fast default.
//! backend::set_backend(BackendKind::Blocked);
//! assert_eq!(backend::active().name(), "blocked");
//! ```
//!
//! The environment variable `ECOFUSION_BACKEND=reference|blocked` sets the
//! default without code changes. Backends agree within `1e-4` (enforced by
//! property tests); the blocked backend is ≥3× faster on GEMM-bound shapes
//! and >10× on branch convolutions — `cargo bench -p ecofusion-bench
//! --bench tensor_ops -- backend` measures it on your machine.
//!
//! For throughput over many frames, prefer
//! [`core::EcoFusionModel::infer_batch`] over per-frame
//! [`core::EcoFusionModel::infer`]: each demanded stem runs once per
//! sensor over the stacked batch, learned gates score all frames in one
//! pass, and each branch executes once over the frames that selected it,
//! with per-frame results identical to the sequential path.
//!
//! ## Staged pipeline
//!
//! Both entry points are thin drivers over an explicit stage graph
//! ([`core::pipeline`]): Sense → Stems → GateScore → Select → Branch →
//! Fuse → Account. A [`core::PipelinePlan`] prunes the Stems stage
//! *before* execution: feature-free gates (knowledge, oracle) gate and
//! select first and run only the winning configuration's stems — a City
//! stream rerouted to `{E(L+R)}` runs 2 of 4, the budget ladder's
//! emergency rung just 1 — while sensors a health mask rules out
//! contribute zero-filled gate features and skip their stems. Every
//! inference carries an [`energy::StageTrace`]: the Eq. 11 breakdown
//! decomposed per stage (summing exactly to
//! [`energy::EnergyBreakdown::total_gated`]) plus
//! executed/cached/pruned stem counters, threaded through
//! [`core::InferenceOutput`], the runtime's telemetry and reports, and
//! [`eval::EvalSummary`]. The runtime additionally keeps one
//! [`core::StemFeatureCache`] per stream
//! ([`core::EcoFusionModel::infer_batch_cached`]), so frozen grids reuse
//! stem features instead of re-running convolutions. See
//! `examples/stage_profile.rs`.
//!
//! ## Streaming runtime
//!
//! The [`runtime`] crate serves **many concurrent vehicle streams** from
//! one model:
//!
//! ```text
//! streams ─▶ bounded per-stream queues ─▶ round-robin coalescing
//!         ─▶ cross-stream micro-batches ─▶ infer_batch ─▶ telemetry
//! ```
//!
//! Each [`runtime::VehicleStream`] is a seeded scene sequence whose
//! driving context drifts over time. Frames land in bounded per-stream
//! queues whose [`runtime::BackpressurePolicy`] either drops the oldest
//! frame (freshness wins) or stalls the producer (completeness wins) when
//! full. The [`runtime::PerceptionServer`] coalesces ready frames across
//! streams into micro-batches — results are bit-identical to per-stream
//! sequential `infer`, so batching only changes throughput. Per-stream
//! [`runtime::EnergyBudget`]s map rolling energy spend to gate policy: a
//! stream over budget climbs a [`runtime::PolicyStep`] ladder that raises
//! `λ_E`, widens the candidate margin `γ`, and ultimately runs the
//! knowledge gate with every configuration a candidate (the single
//! cheapest branch), relaxing back with hysteresis once spend falls. Each
//! stream's accuracy/energy/latency telemetry aggregates into the same
//! [`eval::EvalSummary`] the offline harness reports. See
//! `examples/streaming_server.rs`.
//!
//! ## Sensor faults & fault-aware gating
//!
//! The [`faults`] crate makes sensor degradation a scriptable scenario
//! axis. A [`faults::FaultSchedule`] describes per-sensor events (dropout,
//! frozen frame, noise burst, growing calibration drift, context-tied
//! weather attenuation) with onset, duration, and severity; a
//! [`faults::FaultInjector`] applies them to the output of
//! [`sensors::SensorSuite::observe`] — bit-identical passthrough when no
//! event is active, seeded per-`(frame, event)` RNG streams when one is,
//! so degraded runs are exactly as reproducible as clean ones. A
//! [`faults::SensorHealthMonitor`] estimates per-sensor health online from
//! grid statistics (energy/variance/frame-delta EWMAs) and summarizes
//! failed sensors as a [`sensors::SensorMask`]. The mask rides in
//! [`core::InferenceOptions`]: configurations that need a masked sensor
//! are penalized out of Eq. 7–9 selection, and the knowledge gate walks
//! per-context degraded fallback rules instead of its primary choice.
//! [`runtime::VehicleStream::with_faults`] attaches schedules to served
//! streams, per-lane monitors feed masks when
//! [`runtime::StreamSpec::health_gating`] is on, and the
//! `eval` robustness experiment sweeps the fault matrix clean vs.
//! fault-blind vs. fault-aware. See `examples/fault_injection.rs`.
//!
//! ## Observability
//!
//! The [`trace`] crate is a deterministic flight recorder: a bounded
//! ring of typed events ([`trace::TraceSink`]) on virtual, tick-derived
//! time, so a seeded run emits a *bit-identical* event sequence on every
//! host, every rerun, and (for the stream tracks) every shard count.
//! Install a sink on a server with
//! [`runtime::PerceptionServer::set_tracer`] and every layer reports in:
//! per-stage pipeline spans with exact modeled energy/latency, scheduler
//! steps and work-steal markers, budget-ladder moves, knowledge-gate
//! fallbacks, sensor-health transitions, and fault activations. Export
//! with [`trace::chrome_trace_json`] (load in Perfetto) or
//! [`trace::prometheus_snapshot`]; with no sink installed (or a
//! [`trace::TraceSink::disabled`] one) every hook is a branch on a
//! `bool` — gated bench numbers are unchanged, which CI asserts. See
//! `examples/trace_observability.rs` and the `trace_dump` binary.

pub use ecofusion_core as core;
pub use ecofusion_detect as detect;
pub use ecofusion_energy as energy;
pub use ecofusion_eval as eval;
pub use ecofusion_faults as faults;
pub use ecofusion_gating as gating;
pub use ecofusion_harness as harness;
pub use ecofusion_runtime as runtime;
pub use ecofusion_scene as scene;
pub use ecofusion_search as search;
pub use ecofusion_sensors as sensors;
pub use ecofusion_tensor as tensor;
pub use ecofusion_trace as trace;

/// Convenient single-import surface for the most common types.
pub mod prelude {
    pub use ecofusion_core::{
        BranchId, ConfigId, ConfigSpace, Dataset, DatasetSpec, EcoFusionModel, Frame,
        InferenceOptions, PipelinePlan, StemFeatureCache, TrainConfig, Trainer,
    };
    pub use ecofusion_detect::{BBox, Detection, WbfParams};
    pub use ecofusion_energy::{
        EnergyBreakdown, Joules, Millis, Px2Model, SensorPowerModel, StageKind, StageTrace,
    };
    pub use ecofusion_eval::{map_voc, EvalSummary};
    pub use ecofusion_faults::{
        FaultInjector, FaultKind, FaultSchedule, HealthState, SensorHealthMonitor,
    };
    pub use ecofusion_gating::{AttentionGate, DeepGate, GateKind, KnowledgeGate, LossBasedGate};
    pub use ecofusion_runtime::{
        run_simulation, run_simulation_observed, BackpressurePolicy, EnergyBudget,
        PerceptionServer, RuntimeConfig, RuntimeReport, SimObserver, StepStats, StreamSpec,
        VehicleStream,
    };
    pub use ecofusion_scene::{Context, ObjectClass, ScenarioGenerator, Scene};
    pub use ecofusion_sensors::{SensorKind, SensorMask, SensorSuite};
    pub use ecofusion_trace::{chrome_trace_json, prometheus_snapshot, TraceSink};
}
