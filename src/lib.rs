//! # EcoFusion
//!
//! A Rust reproduction of *"EcoFusion: Energy-Aware Adaptive Sensor Fusion
//! for Efficient Autonomous Vehicle Perception"* (DAC 2022).
//!
//! This facade crate re-exports the public API of every workspace crate so a
//! downstream user can depend on `ecofusion` alone.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ecofusion::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a synthetic RADIATE-like dataset, train the model, and run
//! // the adaptive pipeline on one frame.
//! let spec = DatasetSpec::small(42);
//! let dataset = Dataset::generate(&spec);
//! let mut trainer = Trainer::new(TrainConfig::fast_demo(), 42);
//! let mut model = trainer.train(&dataset)?;
//! let frame = &dataset.test()[0];
//! let out = model.infer(frame, &InferenceOptions::new(0.01, 0.5))?;
//! println!("selected {}, {} detections, {:.3} J",
//!          out.selected_label, out.detections.len(), out.energy_joules());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios.

pub use ecofusion_core as core;
pub use ecofusion_detect as detect;
pub use ecofusion_energy as energy;
pub use ecofusion_eval as eval;
pub use ecofusion_gating as gating;
pub use ecofusion_scene as scene;
pub use ecofusion_sensors as sensors;
pub use ecofusion_tensor as tensor;

/// Convenient single-import surface for the most common types.
pub mod prelude {
    pub use ecofusion_core::{
        BranchId, ConfigId, ConfigSpace, Dataset, DatasetSpec, EcoFusionModel, Frame,
        InferenceOptions, TrainConfig, Trainer,
    };
    pub use ecofusion_detect::{BBox, Detection, WbfParams};
    pub use ecofusion_energy::{EnergyBreakdown, Joules, Millis, Px2Model, SensorPowerModel};
    pub use ecofusion_eval::{map_voc, EvalSummary};
    pub use ecofusion_gating::{AttentionGate, DeepGate, GateKind, KnowledgeGate, LossBasedGate};
    pub use ecofusion_scene::{Context, ObjectClass, Scene, ScenarioGenerator};
    pub use ecofusion_sensors::{SensorKind, SensorSuite};
}
